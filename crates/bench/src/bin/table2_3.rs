//! **Tables 2–3 and Figure 3**: per-phase breakdown of the running time,
//! sequential versus maximum threads, on the two representative
//! distributions.
//!
//! Expected shape (paper, n = 10⁸): the scatter dominates (≈50–71%
//! sequential, ≈46–52% at 40h); bucket construction is ≈1%; the local sort
//! is near zero on the exponential input (mostly heavy keys) but ≈36%
//! sequential on the uniform input; the local sort shows the best speedup
//! (30–52×, cache-resident buckets), packing the worst (12–19×,
//! bandwidth-bound).

use std::time::Duration;

use bench::fmt::{pct1, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{try_semisort_with_stats, SemisortConfig, SemisortStats};
use workloads::{generate, representative_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default()
        .with_seed(args.seed)
        .with_telemetry(args.telemetry);
    let (exp_dist, uni_dist) = representative_distributions(args.n);
    let par_threads = args.max_threads();

    println!(
        "Tables 2-3 / Figure 3: phase breakdown, n = {}, seq vs {} threads\n",
        args.n, par_threads
    );

    for (label, dist) in [
        ("Table 2 (exponential λ = n/1000)", exp_dist),
        ("Table 3 (uniform N = n)", uni_dist),
    ] {
        println!("{label} — {}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let (seq_stats, _) = with_threads(1, || {
            time_best_of(args.reps, || {
                try_semisort_with_stats(&records, &cfg).unwrap().1
            })
        });
        let ((par_stats, par_t), par_eff) = with_threads(par_threads, || {
            let timed = time_best_of(args.reps, || {
                try_semisort_with_stats(&records, &cfg).unwrap().1
            });
            (timed, bench::trajectory::effective_threads())
        });
        print_breakdown(&seq_stats, &par_stats, par_threads);
        bench::trajectory::emit(
            &args,
            "table2_3",
            par_threads,
            par_eff,
            par_t.as_secs_f64(),
            &par_stats,
        );
        println!();
    }
    println!(
        "paper shape: scatter dominates both configurations; local sort \
         matters only when most keys are light (uniform); construct-buckets \
         is ≈1% everywhere"
    );
}

fn print_breakdown(seq: &SemisortStats, par: &SemisortStats, par_threads: usize) {
    let mut table = Table::new(vec![
        "phase".to_string(),
        "seq time (s)".to_string(),
        "seq %".to_string(),
        format!("t={par_threads} time (s)"),
        format!("t={par_threads} %"),
        "speedup".to_string(),
    ]);
    let seq_total = seq.total().as_secs_f64().max(f64::EPSILON);
    let par_total = par.total().as_secs_f64().max(f64::EPSILON);
    for ((name, s), (_, p)) in seq.phases().iter().zip(par.phases().iter()) {
        table.row([
            name.to_string(),
            fmt_s(*s),
            pct1(100.0 * s.as_secs_f64() / seq_total),
            fmt_s(*p),
            pct1(100.0 * p.as_secs_f64() / par_total),
            x2(s.as_secs_f64() / p.as_secs_f64().max(f64::EPSILON)),
        ]);
    }
    table.row([
        "total".to_string(),
        fmt_s(seq.total()),
        "100.0".to_string(),
        fmt_s(par.total()),
        "100.0".to_string(),
        x2(seq_total / par_total),
    ]);
    table.print();
    println!(
        "  sample |S|={}  heavy keys={}  light buckets={}  %heavy records={}  slots/n={:.2}",
        par.sample_size,
        par.heavy_keys,
        par.light_buckets,
        pct1(par.heavy_fraction_pct()),
        par.space_blowup()
    );
}

fn fmt_s(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}
