//! **Figure 1 (a–c)**: running time and the proportion of heavy records
//! for each distribution class versus its parameter, at maximum threads.
//!
//! Expected shape (paper, n = 10⁸, 40h): times between 0.46 s (all-heavy
//! cases, no local sort needed) and 0.56 s (keys near the heavy/light
//! threshold, which inflates light buckets) — a ≤20% spread. The heavy
//! percentage falls monotonically with the parameter for exponential and
//! uniform, and slowly for Zipfian.

use bench::fmt::{pct1, s3, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{try_semisort_with_stats, SemisortConfig};
use workloads::{generate, paper_distributions, Distribution};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let threads = args.max_threads();

    println!(
        "Figure 1: time + %heavy vs distribution parameter, n = {}, {} threads\n",
        args.n, threads
    );

    type DistClass = fn(&Distribution) -> bool;
    let classes: [(&str, DistClass); 3] = [
        ("(a) exponential", is_exp),
        ("(b) uniform", is_uni),
        ("(c) zipfian", is_zipf),
    ];
    for (class, pick) in classes {
        println!("{class}:");
        let mut table = Table::new(["distribution", "time (s)", "% heavy records"]);
        for pd in paper_distributions().iter().filter(|p| pick(&p.dist)) {
            let records = generate(pd.dist, args.n, args.seed);
            let (stats, dt) = with_threads(threads, || {
                time_best_of(args.reps, || {
                    try_semisort_with_stats(&records, &cfg).unwrap().1
                })
            });
            table.row([
                pd.dist.label(),
                s3(dt),
                format!(
                    "{} (paper@1e8: {})",
                    pct1(stats.heavy_fraction_pct()),
                    pct1(pd.paper_heavy_pct)
                ),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "paper shape: flat times (0.46–0.56 s at n=1e8), minima where >99% of \
         records are heavy, maxima where most keys sit near the heavy/light threshold"
    );
}

fn is_exp(d: &Distribution) -> bool {
    matches!(d, Distribution::Exponential { .. })
}
fn is_uni(d: &Distribution) -> bool {
    matches!(d, Distribution::Uniform { .. })
}
fn is_zipf(d: &Distribution) -> bool {
    matches!(d, Distribution::Zipfian { .. })
}
