//! **Ablations**: the §4 design choices, measured one knob at a time.
//!
//! - light-bucket merging on/off (paper: merging is worth ≤10%);
//! - linear probing vs fresh-random-slot probing in the scatter (paper:
//!   linear probing chosen for cache performance);
//! - the CAS scatter vs the block-buffered scatter (one fetch_add slab
//!   reservation per block instead of one CAS per record);
//! - the heavy threshold δ;
//! - the sampling rate p = 1/2^shift;
//! - the local sort algorithm (paper: the STL hybrid sort was chosen for
//!   consistency; alternatives performed similarly);
//! - `--reuse`: the [`Semisorter`] engine's pooled scratch vs the one-shot
//!   API — same records, `--reps` consecutive calls each, reporting
//!   per-call wall time and *newly allocated* heap bytes (the engine's
//!   steady-state calls must allocate zero new arena bytes, verified via
//!   `scratch_grows`).

use bench::alloc_track::{measure_total, TrackingAllocator};
use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{
    try_semisort_with_stats, LocalSortAlgo, ProbeStrategy, ScatterConfig, ScatterStrategy,
    SemisortConfig, Semisorter,
};
use workloads::{generate, representative_distributions, Distribution};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// The `--reuse` arm: warm engine vs one-shot API, `reps` consecutive
/// calls on the same records. Panics if a steady-state engine call grows
/// its pool — that is the regression this arm exists to catch.
fn reuse_arm(args: &Args) {
    let n = args.n;
    let reps = args.reps.max(2); // need ≥1 steady-state call
    let threads = args.max_threads();
    let cfg = SemisortConfig::default()
        .with_seed(args.seed)
        .with_telemetry(args.telemetry);
    let records = generate(
        Distribution::Zipfian {
            m: (n as u64 / 10).max(1),
        },
        n,
        args.seed,
    );

    println!("Engine reuse: n = {n}, {threads} threads, {reps} consecutive calls\n");
    let mut table = Table::new([
        "call",
        "engine (s)",
        "alloc (MB)",
        "one-shot (s)",
        "alloc (MB)",
    ]);

    let mut engine = Semisorter::new(cfg).expect("valid config");
    let mut wall_engine_steady = 0.0f64;
    let mut wall_oneshot_steady = 0.0f64;
    for call in 0..reps {
        let t = std::time::Instant::now();
        let (out, eng_alloc) = with_threads(threads, || {
            measure_total(|| engine.sort_pairs(&records).unwrap())
        });
        let eng_s = t.elapsed().as_secs_f64();
        assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
        if call > 0 {
            wall_engine_steady += eng_s;
            assert_eq!(
                engine.last_stats().scratch_grows,
                0,
                "steady-state engine call {call} grew its scratch pool"
            );
        }
        let t = std::time::Instant::now();
        let (_, one_alloc) = with_threads(threads, || {
            measure_total(|| try_semisort_with_stats(&records, &cfg).unwrap())
        });
        let one_s = t.elapsed().as_secs_f64();
        if call > 0 {
            wall_oneshot_steady += one_s;
        }
        let mb = |b: usize| format!("{:.1}", b as f64 / 1e6);
        table.row([
            call.to_string(),
            format!("{eng_s:.3}"),
            mb(eng_alloc),
            format!("{one_s:.3}"),
            mb(one_alloc),
        ]);
    }
    table.print();
    let steady = (reps - 1) as f64;
    println!(
        "\nsteady state (calls 1..{reps}): engine {:.3}s/call, one-shot {:.3}s/call \
         ({:.2}x); engine steady-state scratch_grows = 0 (verified)",
        wall_engine_steady / steady,
        wall_oneshot_steady / steady,
        wall_oneshot_steady / wall_engine_steady.max(1e-12),
    );
    // The trajectory line records the warm engine's final call: its
    // scratch counters are the reuse evidence this arm archives.
    let engine_stats = engine.last_stats().clone();
    let eff = with_threads(threads, bench::trajectory::effective_threads);
    bench::trajectory::emit(
        args,
        "ablation-reuse",
        threads,
        eff,
        wall_engine_steady / steady,
        &engine_stats,
    );
}

fn main() {
    let Some(args) = Args::parse() else { return };
    if args.reuse {
        reuse_arm(&args);
        return;
    }
    let (exp_dist, uni_dist) = representative_distributions(args.n);
    let threads = args.max_threads();

    println!(
        "Ablations: n = {}, {} threads, best of {}\n",
        args.n, threads, args.reps
    );

    for dist in [exp_dist, uni_dist] {
        println!("{}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let base_cfg = SemisortConfig::default()
            .with_seed(args.seed)
            .with_telemetry(args.telemetry);
        let ((base_stats, base), eff) = with_threads(threads, || {
            let timed = time_best_of(args.reps, || {
                try_semisort_with_stats(&records, &base_cfg).unwrap().1
            });
            (timed, bench::trajectory::effective_threads())
        });
        let base_s = base.as_secs_f64();
        bench::trajectory::emit(&args, "ablation", threads, eff, base_s, &base_stats);

        let mut table = Table::new(["variant", "time (s)", "vs default", "slots/n"]);
        let mut run = |name: &str, cfg: SemisortConfig| {
            let (stats, t) = with_threads(threads, || {
                time_best_of(args.reps, || {
                    try_semisort_with_stats(&records, &cfg).unwrap().1
                })
            });
            table.row([
                name.to_string(),
                s3(t),
                x2(t.as_secs_f64() / base_s),
                format!("{:.2}", stats.space_blowup()),
            ]);
        };

        run("default (paper constants)", base_cfg);
        run(
            "no light-bucket merging",
            SemisortConfig {
                merge_light_buckets: false,
                ..base_cfg
            },
        );
        run(
            "random-slot probing",
            SemisortConfig {
                probe_strategy: ProbeStrategy::Random,
                ..base_cfg
            },
        );
        run(
            "blocked scatter",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::Blocked,
                    ..ScatterConfig::default()
                },
                ..base_cfg
            },
        );
        run(
            "blocked scatter, block = 64",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::Blocked,
                    block: 64,
                    ..ScatterConfig::default()
                },
                ..base_cfg
            },
        );
        run(
            "in-place scatter",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::InPlace,
                    ..ScatterConfig::default()
                },
                ..base_cfg
            },
        );
        run(
            "prefetch off",
            SemisortConfig {
                scatter: ScatterConfig {
                    prefetch_distance: 0,
                    ..ScatterConfig::default()
                },
                ..base_cfg
            },
        );
        for delta in [4usize, 8, 32, 64] {
            run(
                &format!("δ = {delta}"),
                SemisortConfig {
                    heavy_threshold: delta,
                    ..base_cfg
                },
            );
        }
        for shift in [2u32, 3, 5, 6] {
            run(
                &format!("p = 1/{}", 1 << shift),
                SemisortConfig {
                    sample_shift: shift,
                    ..base_cfg
                },
            );
        }
        run(
            "local sort: stable",
            SemisortConfig {
                local_sort_algo: LocalSortAlgo::StdStable,
                ..base_cfg
            },
        );
        run(
            "local sort: naming+counting",
            SemisortConfig {
                local_sort_algo: LocalSortAlgo::Counting,
                ..base_cfg
            },
        );
        table.print();
        println!();
    }

    // Head-to-head scatter comparison on the three shapes that stress it
    // differently: all-light (uniform), skewed (Zipfian power law), and
    // single-bucket (all keys equal). Each strategy also runs with
    // prefetching disabled, and every run appends a trajectory record so
    // the three-strategy (± prefetch) ablation lands in
    // `BENCH_semisort.json`.
    println!("Scatter strategy (RandomCas vs Blocked vs InPlace), t_scatter isolated:");
    let scatter_dists = [
        Distribution::Uniform { n: args.n as u64 },
        Distribution::Zipfian { m: 1_000_000 },
        Distribution::Uniform { n: 1 }, // all keys equal
    ];
    let mut table = Table::new([
        "input",
        "strategy",
        "total (s)",
        "scatter (s)",
        "blocks",
        "slab ovf",
        "cycles",
        "swap flush",
        "scratch (B)",
    ]);
    for dist in scatter_dists {
        let records = generate(dist, args.n, args.seed);
        for (name, strategy) in [
            ("random-cas", ScatterStrategy::RandomCas),
            ("blocked", ScatterStrategy::Blocked),
            ("inplace", ScatterStrategy::InPlace),
        ] {
            for prefetch_distance in [ScatterConfig::default().prefetch_distance, 0] {
                let cfg = SemisortConfig {
                    scatter: ScatterConfig {
                        strategy,
                        prefetch_distance,
                        ..ScatterConfig::default()
                    },
                    telemetry: args.telemetry,
                    ..SemisortConfig::default().with_seed(args.seed)
                };
                let ((stats, t), eff) = with_threads(threads, || {
                    let timed = time_best_of(args.reps, || {
                        try_semisort_with_stats(&records, &cfg).unwrap().1
                    });
                    (timed, bench::trajectory::effective_threads())
                });
                bench::trajectory::emit(
                    &args,
                    "ablation-scatter",
                    threads,
                    eff,
                    t.as_secs_f64(),
                    &stats,
                );
                table.row([
                    dist.label(),
                    if prefetch_distance == 0 {
                        format!("{name} (no prefetch)")
                    } else {
                        name.to_string()
                    },
                    s3(t),
                    format!("{:.3}", stats.t_scatter.as_secs_f64()),
                    stats.blocks_flushed.to_string(),
                    stats.slab_overflows.to_string(),
                    stats.inplace_cycles.to_string(),
                    stats.swap_buffer_flushes.to_string(),
                    stats.scratch_bytes_held.to_string(),
                ]);
            }
        }
    }
    table.print();
    println!();
    println!(
        "paper shape: merging saves ≤10%; linear probing beats random \
         probing; the defaults (p = 1/16, δ = 16) sit at the flat bottom of \
         their sweeps; local-sort variants are within noise of each other"
    );
}
