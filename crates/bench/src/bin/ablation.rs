//! **Ablations**: the §4 design choices, measured one knob at a time.
//!
//! - light-bucket merging on/off (paper: merging is worth ≤10%);
//! - linear probing vs fresh-random-slot probing in the scatter (paper:
//!   linear probing chosen for cache performance);
//! - the CAS scatter vs the block-buffered scatter (one fetch_add slab
//!   reservation per block instead of one CAS per record);
//! - the heavy threshold δ;
//! - the sampling rate p = 1/2^shift;
//! - the local sort algorithm (paper: the STL hybrid sort was chosen for
//!   consistency; alternatives performed similarly).

use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use semisort::{
    semisort_with_stats, LocalSortAlgo, ProbeStrategy, ScatterStrategy, SemisortConfig,
};
use workloads::{generate, representative_distributions, Distribution};

fn main() {
    let args = Args::parse();
    let (exp_dist, uni_dist) = representative_distributions(args.n);
    let threads = args.max_threads();

    println!(
        "Ablations: n = {}, {} threads, best of {}\n",
        args.n, threads, args.reps
    );

    for dist in [exp_dist, uni_dist] {
        println!("{}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let base_cfg = SemisortConfig::default()
            .with_seed(args.seed)
            .with_telemetry(args.telemetry);
        let (base_stats, base) = with_threads(threads, || {
            time_best_of(args.reps, || semisort_with_stats(&records, &base_cfg).1)
        });
        let base_s = base.as_secs_f64();
        bench::trajectory::emit(&args, "ablation", threads, base_s, &base_stats);

        let mut table = Table::new(["variant", "time (s)", "vs default", "slots/n"]);
        let mut run = |name: &str, cfg: SemisortConfig| {
            let (stats, t) = with_threads(threads, || {
                time_best_of(args.reps, || semisort_with_stats(&records, &cfg).1)
            });
            table.row([
                name.to_string(),
                s3(t),
                x2(t.as_secs_f64() / base_s),
                format!("{:.2}", stats.space_blowup()),
            ]);
        };

        run("default (paper constants)", base_cfg);
        run(
            "no light-bucket merging",
            SemisortConfig {
                merge_light_buckets: false,
                ..base_cfg
            },
        );
        run(
            "random-slot probing",
            SemisortConfig {
                probe_strategy: ProbeStrategy::Random,
                ..base_cfg
            },
        );
        run(
            "blocked scatter",
            SemisortConfig {
                scatter_strategy: ScatterStrategy::Blocked,
                ..base_cfg
            },
        );
        run(
            "blocked scatter, block = 64",
            SemisortConfig {
                scatter_strategy: ScatterStrategy::Blocked,
                scatter_block: 64,
                ..base_cfg
            },
        );
        for delta in [4usize, 8, 32, 64] {
            run(
                &format!("δ = {delta}"),
                SemisortConfig {
                    heavy_threshold: delta,
                    ..base_cfg
                },
            );
        }
        for shift in [2u32, 3, 5, 6] {
            run(
                &format!("p = 1/{}", 1 << shift),
                SemisortConfig {
                    sample_shift: shift,
                    ..base_cfg
                },
            );
        }
        run(
            "local sort: stable",
            SemisortConfig {
                local_sort_algo: LocalSortAlgo::StdStable,
                ..base_cfg
            },
        );
        run(
            "local sort: naming+counting",
            SemisortConfig {
                local_sort_algo: LocalSortAlgo::Counting,
                ..base_cfg
            },
        );
        table.print();
        println!();
    }

    // Head-to-head scatter comparison on the three shapes that stress it
    // differently: all-light (uniform), skewed (Zipfian power law), and
    // single-bucket (all keys equal).
    println!("Scatter strategy (RandomCas vs Blocked), t_scatter isolated:");
    let scatter_dists = [
        Distribution::Uniform { n: args.n as u64 },
        Distribution::Zipfian { m: 1_000_000 },
        Distribution::Uniform { n: 1 }, // all keys equal
    ];
    let mut table = Table::new([
        "input",
        "strategy",
        "total (s)",
        "scatter (s)",
        "blocks",
        "slab ovf",
        "fallback",
    ]);
    for dist in scatter_dists {
        let records = generate(dist, args.n, args.seed);
        for (name, strategy) in [
            ("random-cas", ScatterStrategy::RandomCas),
            ("blocked", ScatterStrategy::Blocked),
        ] {
            let cfg = SemisortConfig {
                scatter_strategy: strategy,
                telemetry: args.telemetry,
                ..SemisortConfig::default().with_seed(args.seed)
            };
            let (stats, t) = with_threads(threads, || {
                time_best_of(args.reps, || semisort_with_stats(&records, &cfg).1)
            });
            table.row([
                dist.label(),
                name.to_string(),
                s3(t),
                format!("{:.3}", stats.t_scatter.as_secs_f64()),
                stats.blocks_flushed.to_string(),
                stats.slab_overflows.to_string(),
                stats.fallback_records.to_string(),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "paper shape: merging saves ≤10%; linear probing beats random \
         probing; the defaults (p = 1/16, δ = 16) sit at the flat bottom of \
         their sweeps; local-sort variants are within noise of each other"
    );
}
