//! Throughput table for every substrate primitive — the PBBS-style "suite"
//! view. Useful as a one-shot sanity check that the substrate performs
//! sensibly before trusting the per-figure experiments.

use bench::fmt::{x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::with_threads;
use rayon::slice::ParallelSliceMut;
use workloads::{generate, Distribution};

fn main() {
    let Some(args) = Args::parse() else { return };
    let n = args.n;
    let threads = args.max_threads();
    println!(
        "Substrate throughput, n = {n}, {} thread(s), best of {}\n",
        threads, args.reps
    );

    let keys: Vec<u64> = generate(Distribution::Uniform { n: n as u64 }, n, args.seed)
        .into_iter()
        .map(|r| r.0)
        .collect();
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let counts: Vec<usize> = keys.iter().map(|&k| (k % 256) as usize).collect();

    let mut table = Table::new(["primitive", "time (s)", "Melem/s"]);
    let mut bench = |name: &str, f: &(dyn Fn() -> usize + Sync)| {
        let (_, dt) = with_threads(threads, || time_best_of(args.reps, f));
        table.row([
            name.to_string(),
            format!("{:.4}", dt.as_secs_f64()),
            x2(n as f64 / dt.as_secs_f64() / 1e6),
        ]);
    };

    bench("scan (prefix sum)", &|| {
        let mut v = counts.clone();
        parlay::scan_add_exclusive(&mut v)
    });
    bench("reduce (sum)", &|| parlay::reduce::sum_u64(&keys) as usize);
    bench("pack (keep half)", &|| {
        parlay::pack(&keys, |_, &k| k % 2 == 0).len()
    });
    bench("histogram (m=256)", &|| {
        parlay::histogram::histogram(&counts, 256).len()
    });
    bench("counting sort (m=256)", &|| {
        let mut v = counts.clone();
        parlay::counting_sort::counting_sort(&mut v, 256, |&k| k).len()
    });
    bench("radix sort (64-bit pairs)", &|| {
        let mut v = pairs.clone();
        parlay::radix_sort::radix_sort_pairs(&mut v);
        v.len()
    });
    bench("sample sort (pairs)", &|| {
        let mut v = pairs.clone();
        parlay::sample_sort::sample_sort_pairs(&mut v);
        v.len()
    });
    bench("merge sort (pairs)", &|| {
        let mut v = pairs.clone();
        parlay::merge::merge_sort_by(&mut v, |a, b| a.0 < b.0);
        v.len()
    });
    bench("RR integer sort (20-bit)", &|| {
        let mut v: Vec<(u64, u64)> = pairs.iter().map(|&(k, p)| (k & 0xF_FFFF, p)).collect();
        parlay::rr_sort::rr_sort_by_key(&mut v, 20, |r| r.0);
        v.len()
    });
    bench("std par_sort (pairs)", &|| {
        let mut v = pairs.clone();
        v.par_sort_unstable_by_key(|r| r.0);
        v.len()
    });
    bench("random shuffle", &|| {
        let mut v = keys.clone();
        parlay::shuffle::random_shuffle(&mut v, 7);
        v.len()
    });
    bench("hash table insert+lookup", &|| {
        let t = parlay::hash_table::PhaseConcurrentMap::<u32>::new(n / 16);
        for &k in keys.iter().step_by(16) {
            t.insert(k | 1, 1);
        }
        keys.iter()
            .step_by(16)
            .filter(|&&k| t.contains(k | 1))
            .count()
    });
    bench("semisort (end to end)", &|| {
        semisort::try_semisort_pairs(&pairs, &semisort::SemisortConfig::default())
            .unwrap()
            .len()
    });

    table.print();

    // The stats-carrying run for --stats-json and the trajectory file
    // (the closure-driven rows above only keep wall times).
    let cfg = semisort::SemisortConfig::default()
        .with_seed(args.seed)
        .with_telemetry(args.telemetry);
    let ((stats, dt), eff) = with_threads(threads, || {
        let timed = time_best_of(args.reps, || {
            semisort::try_semisort_with_stats(&pairs, &cfg).unwrap().1
        });
        (timed, bench::trajectory::effective_threads())
    });
    bench::trajectory::emit(&args, "pbbs_suite", threads, eff, dt.as_secs_f64(), &stats);
}
