//! **Figure 2 (a, b)**: running time versus thread count for parallel
//! semisort and radix sort, on the two representative distributions.
//!
//! Expected shape (paper, n = 10⁸): both scale near-linearly to 40 cores,
//! but semisort's curve sits ≈2× below radix sort's at full parallelism
//! (radix makes more passes over memory and saturates bandwidth first);
//! semisort reaches speedup 31.7–34.6, radix about half that.

use bench::fmt::{s3, x2, Table};
use bench::timing::time_best_of;
use bench::Args;
use parlay::radix_sort::radix_sort_pairs;
use parlay::with_threads;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, representative_distributions};

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);
    let (exp_dist, uni_dist) = representative_distributions(args.n);

    println!(
        "Figure 2: time vs thread count, n = {}, best of {}\n",
        args.n, args.reps
    );

    for (label, dist) in [("(a)", exp_dist), ("(b)", uni_dist)] {
        println!("{label} {}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let mut table = Table::new([
            "threads",
            "semisort (s)",
            "semisort spd",
            "radix (s)",
            "radix spd",
            "radix/semisort",
        ]);
        let mut semi_t1 = 0.0;
        let mut radix_t1 = 0.0;
        for &t in &args.threads {
            let (_, semi) = with_threads(t, || {
                time_best_of(args.reps, || {
                    try_semisort_pairs(&records, &cfg).unwrap().len()
                })
            });
            let (_, radix) = with_threads(t, || {
                time_best_of(args.reps, || {
                    let mut v = records.clone();
                    radix_sort_pairs(&mut v);
                    v.len()
                })
            });
            if t == args.threads[0] {
                semi_t1 = semi.as_secs_f64();
                radix_t1 = radix.as_secs_f64();
            }
            table.row([
                t.to_string(),
                s3(semi),
                x2(semi_t1 / semi.as_secs_f64()),
                s3(radix),
                x2(radix_t1 / radix.as_secs_f64()),
                x2(radix.as_secs_f64() / semi.as_secs_f64()),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "paper shape: both near-linear in threads; semisort ≈2x faster than \
         radix at 40h (radix is memory-bandwidth bound from repeated passes)"
    );
}
