//! **Lemma 3.5 (space)**: peak heap usage per algorithm, measured with a
//! tracking global allocator.
//!
//! Expected shape: semisort's peak extra memory is a small constant
//! multiple of the input (slot arena ≈ `α·Σf(s)` ≈ 4–5 × 16 B/record +
//! output), and stays a constant factor across distributions and sizes —
//! the empirical form of "O(n) expected space". The comparison sorts use
//! ≈2× input (scratch + output); the sequential chained hash table ≈3×
//! (directory + next-links + output).

use baselines::{seq_hash_semisort, seq_two_phase_semisort};
use bench::alloc_track::{measure_peak, TrackingAllocator};
use bench::fmt::{x2, Table};
use bench::Args;
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, representative_distributions, Distribution};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let Some(args) = Args::parse() else { return };
    let cfg = SemisortConfig::default().with_seed(args.seed);

    println!(
        "Peak additional heap per algorithm (input is {} × 16 B records)\n",
        args.n
    );

    let (exp_dist, uni_dist) = representative_distributions(args.n);
    for dist in [
        exp_dist,
        uni_dist,
        Distribution::Zipfian { m: args.n as u64 },
    ] {
        println!("{}:", dist.label());
        let records = generate(dist, args.n, args.seed);
        let input_bytes = records.len() * 16;

        let mut table = Table::new(["algorithm", "peak extra (MiB)", "× input"]);
        let mut row = |name: &str, peak: usize| {
            table.row([
                name.to_string(),
                format!("{:.1}", peak as f64 / (1 << 20) as f64),
                x2(peak as f64 / input_bytes as f64),
            ]);
        };

        let (_, peak) = measure_peak(|| try_semisort_pairs(&records, &cfg).unwrap().len());
        row("parallel semisort", peak);
        let (_, peak) = measure_peak(|| seq_hash_semisort(&records).len());
        row("seq chained hash", peak);
        let (_, peak) = measure_peak(|| seq_two_phase_semisort(&records).len());
        row("seq two-phase", peak);
        let (_, peak) = measure_peak(|| {
            let mut v = records.clone();
            parlay::radix_sort::radix_sort_pairs(&mut v);
            v.len()
        });
        row("radix sort", peak);
        let (_, peak) = measure_peak(|| {
            let mut v = records.clone();
            parlay::sample_sort::sample_sort_pairs(&mut v);
            v.len()
        });
        row("sample sort", peak);
        let (_, peak) = measure_peak(|| baselines::par_sort_semisort(&records).len());
        row("std par_sort", peak);
        table.print();
        println!();
    }
    println!(
        "Lemma 3.5 shape: semisort's arena + output is a bounded constant \
         multiple of the input at every distribution"
    );
}
