//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Time one evaluation of `f`, returning `(result, elapsed)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Best-of-`reps` timing (the conventional way to suppress OS noise for
/// throughput benchmarks): runs `f` `reps` times, returns the last result
/// and the **minimum** elapsed time. (Formerly misnamed `time_avg` — it
/// never averaged.)
pub fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed());
        last = Some(r);
    }
    (last.expect("reps >= 1"), best)
}

/// Seconds as the paper prints them (two decimals).
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (v, d) = time(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn best_of_is_min() {
        let mut calls = 0;
        let (_, d) = time_best_of(5, || {
            calls += 1;
            if calls == 3 {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        assert_eq!(calls, 5);
        assert!(
            d < Duration::from_millis(5),
            "best-of must skip the slow rep"
        );
    }

    #[test]
    #[should_panic]
    fn zero_reps_panics() {
        time_best_of(0, || ());
    }
}
