//! A tracking global allocator for the space experiments.
//!
//! Lemma 3.5 claims `O(n)` *space*; wall-clock benchmarks can't see memory.
//! Installing [`TrackingAllocator`] as the global allocator lets the
//! `space_usage` harness report live-bytes peaks per algorithm, turning the
//! space claim into a measured number.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global-allocator wrapper counting live and peak bytes.
pub struct TrackingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates all allocation to `System`, only adding counters.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator under
        // the caller's GlobalAlloc contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            // ORDERING: Relaxed accounting counters — each is
            // individually consistent via RMW atomicity; readers accept a
            // momentarily skewed live/peak pair.
            // publishes-via: none needed — approximate accounting by design
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            // ORDERING: as above. publishes-via: none needed
            PEAK.fetch_max(live, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: none needed
            TOTAL.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator under
        // the caller's GlobalAlloc contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            // ORDERING: Relaxed accounting counters — each is
            // individually consistent via RMW atomicity; readers accept a
            // momentarily skewed live/peak pair.
            // publishes-via: none needed — approximate accounting by design
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            // ORDERING: as above. publishes-via: none needed
            PEAK.fetch_max(live, Ordering::Relaxed);
            // ORDERING: as above. publishes-via: none needed
            TOTAL.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim to the system allocator under
        // the caller's GlobalAlloc contract.
        unsafe { System.dealloc(ptr, layout) };
        // ORDERING: Relaxed accounting decrement (see `alloc`).
        // publishes-via: none needed — approximate accounting by design
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator under
        // the caller's GlobalAlloc contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                // ORDERING: Relaxed accounting counters (see `alloc`).
                // publishes-via: none needed — approximate accounting
                let live = LIVE.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                // ORDERING: as above. publishes-via: none needed
                PEAK.fetch_max(live, Ordering::Relaxed);
                // ORDERING: as above. publishes-via: none needed
                TOTAL.fetch_add(new_size - old, Ordering::Relaxed);
            } else {
                // ORDERING: as above. publishes-via: none needed
                LIVE.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    // ORDERING: Relaxed snapshot of an approximate counter.
    // publishes-via: none needed — approximate accounting by design
    LIVE.load(Ordering::Relaxed)
}

/// Reset the peak to the current live volume and return the old peak.
pub fn reset_peak() -> usize {
    // ORDERING: Relaxed swap/load pair; concurrent allocations can skew
    // the baseline, which the space harness tolerates (quiesced use).
    // publishes-via: none needed — approximate accounting by design
    PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    // ORDERING: Relaxed snapshot of an approximate counter.
    // publishes-via: none needed — approximate accounting by design
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated (never decremented; reallocation
/// growth counts its delta). The steady-state reuse benchmark diffs this
/// across calls: an engine call that reuses its pool adds ~0 here, a
/// one-shot call re-adds its whole working set every time.
pub fn total_allocated_bytes() -> usize {
    // ORDERING: Relaxed snapshot of a monotone counter.
    // publishes-via: none needed — approximate accounting by design
    TOTAL.load(Ordering::Relaxed)
}

/// Measure the heap bytes newly allocated while running `f` (cumulative,
/// not peak — frees don't subtract). Only meaningful in a binary that
/// installs [`TrackingAllocator`] via `#[global_allocator]`.
pub fn measure_total<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = total_allocated_bytes();
    let r = f();
    (r, total_allocated_bytes() - base)
}

/// Measure the peak *additional* heap used while running `f`.
///
/// Returns `(result, peak_extra_bytes)`: the high-water mark of allocations
/// above the level live when `f` started. Only meaningful in a binary that
/// installs [`TrackingAllocator`] via `#[global_allocator]`.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = live_bytes();
    reset_peak();
    let r = f();
    let peak = peak_bytes();
    (r, peak.saturating_sub(base))
}
