//! Tiny dependency-free CLI parsing shared by the harness binaries.
//!
//! Every binary accepts:
//!
//! - `--n <records>` — input size (default 1,000,000; the paper ran 10⁸).
//! - `--threads <list>` — comma-separated thread counts to sweep
//!   (default derived from the machine).
//! - `--reps <k>` — timing repetitions, best-of (default 3).
//! - `--seed <u64>` — workload + algorithm seed (default 42).
//! - `--sizes <list>` — comma-separated input sizes for size-sweep
//!   binaries.
//! - `--quick` — shrink everything for a fast smoke run.
//! - `--stats-json <path>` — write the last run's `semisort-stats-v2`
//!   JSON object to `path` (see `semisort::stats` for the schema).
//! - `--trajectory <path>` — where to append one JSONL run record per
//!   measured run (default `BENCH_semisort.json`; `none` disables).
//! - `--telemetry <off|counters|deep>` — telemetry level for the measured
//!   runs (default off).
//! - `--reuse` — (`ablation` only) run the engine-reuse arm: a warm
//!   [`semisort::Semisorter`] vs the one-shot API on the same records,
//!   `--reps` consecutive calls each.

use semisort::TelemetryLevel;

/// Parsed harness arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Input size (records).
    pub n: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timing repetitions (best-of).
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
    /// Sizes for sweep binaries.
    pub sizes: Vec<usize>,
    /// Smoke-run mode.
    pub quick: bool,
    /// Where to write the last run's stats JSON, if anywhere.
    pub stats_json: Option<String>,
    /// Trajectory JSONL path (`"none"` disables appending).
    pub trajectory: String,
    /// Telemetry level for measured runs.
    pub telemetry: TelemetryLevel,
    /// Run the engine-reuse ablation arm (`ablation` only).
    pub reuse: bool,
}

impl Default for Args {
    fn default() -> Self {
        let max_t = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut threads = vec![1usize];
        let mut t = 2;
        while t <= max_t {
            threads.push(t);
            t *= 2;
        }
        if *threads.last().unwrap() != max_t {
            threads.push(max_t);
        }
        Args {
            n: 1_000_000,
            threads,
            reps: 3,
            seed: 42,
            sizes: vec![100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000],
            quick: false,
            stats_json: None,
            trajectory: crate::trajectory::DEFAULT_TRAJECTORY.to_string(),
            telemetry: TelemetryLevel::Off,
            reuse: false,
        }
    }
}

impl Args {
    /// Parse `std::env::args()`; panics with a usage message on bad input.
    /// Returns `None` when `--help` was requested (usage already printed) —
    /// the caller should simply return from `main`.
    pub fn parse() -> Option<Self> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Option<Self> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--n" => out.n = parse_size(&value("--n")),
                "--threads" => {
                    out.threads = value("--threads")
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad thread count"))
                        .collect()
                }
                "--reps" => out.reps = value("--reps").parse().expect("bad reps"),
                "--seed" => out.seed = value("--seed").parse().expect("bad seed"),
                "--sizes" => {
                    out.sizes = value("--sizes")
                        .split(',')
                        .map(|s| parse_size(s.trim()))
                        .collect()
                }
                "--quick" => out.quick = true,
                "--reuse" => out.reuse = true,
                "--stats-json" => out.stats_json = Some(value("--stats-json")),
                "--trajectory" => out.trajectory = value("--trajectory"),
                "--telemetry" => {
                    let v = value("--telemetry");
                    out.telemetry = TelemetryLevel::parse(&v)
                        .unwrap_or_else(|| panic!("bad telemetry level {v} (off|counters|deep)"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --n <records> --threads <a,b,c> --reps <k> \
                         --seed <u64> --sizes <a,b,c> --quick --reuse \
                         --stats-json <path> --trajectory <path|none> \
                         --telemetry <off|counters|deep>"
                    );
                    return None;
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if out.quick {
            out.n = out.n.min(200_000);
            out.sizes = vec![50_000, 100_000, 200_000];
            out.reps = 1;
        }
        Some(out)
    }

    /// The largest thread count in the sweep (the "40h" column analogue).
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

/// Parse sizes with `k`/`m`/`g` suffixes: `100k`, `2m`, `1g`.
fn parse_size(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(head) => {
            let mult = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1_000,
                b'm' => 1_000_000,
                _ => 1_000_000_000,
            };
            (head, mult)
        }
        None => (lower.as_str(), 1),
    };
    let base: f64 = num.parse().unwrap_or_else(|_| panic!("bad size {s}"));
    (base * mult as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| s.to_string())).expect("not a --help invocation")
    }

    #[test]
    fn help_returns_none_instead_of_exiting() {
        assert!(Args::parse_from(["--help".to_string()]).is_none());
        assert!(Args::parse_from(["-h".to_string()]).is_none());
    }

    #[test]
    fn defaults_are_sane() {
        let a = Args::default();
        assert!(a.n > 0);
        assert_eq!(a.threads[0], 1);
        assert!(a.reps >= 1);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--n",
            "2m",
            "--threads",
            "1,2,8",
            "--reps",
            "5",
            "--seed",
            "9",
            "--sizes",
            "100k,1m",
        ]);
        assert_eq!(a.n, 2_000_000);
        assert_eq!(a.threads, vec![1, 2, 8]);
        assert_eq!(a.reps, 5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.sizes, vec![100_000, 1_000_000]);
    }

    #[test]
    fn reuse_flag_parses() {
        assert!(!parse(&[]).reuse);
        assert!(parse(&["--reuse"]).reuse);
        let a = parse(&["--reuse", "--n", "10k"]);
        assert!(a.reuse);
        assert_eq!(a.n, 10_000);
    }

    #[test]
    fn quick_mode_shrinks() {
        let a = parse(&["--n", "50m", "--quick"]);
        assert!(a.n <= 200_000);
        assert_eq!(a.reps, 1);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("123"), 123);
        assert_eq!(parse_size("10k"), 10_000);
        assert_eq!(parse_size("1.5m"), 1_500_000);
        assert_eq!(parse_size("1g"), 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn max_threads() {
        let a = parse(&["--threads", "4,1,2"]);
        assert_eq!(a.max_threads(), 4);
    }

    #[test]
    fn stats_flags_parse() {
        let a = parse(&[
            "--stats-json",
            "/tmp/out.json",
            "--trajectory",
            "none",
            "--telemetry",
            "deep",
        ]);
        assert_eq!(a.stats_json.as_deref(), Some("/tmp/out.json"));
        assert_eq!(a.trajectory, "none");
        assert_eq!(a.telemetry, TelemetryLevel::Deep);
    }

    #[test]
    fn stats_flags_default_off() {
        let a = parse(&[]);
        assert_eq!(a.stats_json, None);
        assert_eq!(a.trajectory, crate::trajectory::DEFAULT_TRAJECTORY);
        assert_eq!(a.telemetry, TelemetryLevel::Off);
    }

    #[test]
    #[should_panic(expected = "bad telemetry level")]
    fn bad_telemetry_level_panics() {
        parse(&["--telemetry", "verbose"]);
    }
}
