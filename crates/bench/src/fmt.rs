//! Plain-text table rendering for the harness output.
//!
//! The binaries print tables shaped like the paper's (rows/columns in the
//! same order), so a diff against the paper is a visual scan.

/// A simple left-padded text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], width: &[usize]| -> String {
            row.iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>w$}", cell, w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Render to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in seconds with 3 significant decimals (paper style).
pub fn s3(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a speedup/ratio with 2 decimals.
pub fn x2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["dist", "time", "speedup"]);
        t.row(["exp(100)", "0.46", "29.15"]);
        t.row(["uniform(100M)", "0.53", "34.60"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dist"));
        assert!(lines[2].ends_with("29.15"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(s3(std::time::Duration::from_millis(1234)), "1.234");
        assert_eq!(x2(29.1534), "29.15");
        assert_eq!(pct1(99.97), "100.0");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
