//! The `BENCH_semisort.json` trajectory file.
//!
//! Every benchmark binary (and `semisort-cli bench`) appends one JSON
//! object per run — JSON Lines, one run per line — so the repo accumulates
//! a machine-readable performance trajectory across commits. Each line
//! wraps a `semisort-stats-v2` object (see `semisort::stats`) in a run
//! record:
//!
//! ```json
//! {"schema": "semisort-bench-v1", "ts_unix": 1754300000,
//!  "git": "4538b58", "bin": "ablation", "threads": 8,
//!  "threads_effective": 8, "wall_s": 0.123,
//!  "stats": { ... semisort-stats-v2 ... }}
//! ```
//!
//! `threads` echoes the `--threads` flag (or the machine default);
//! `threads_effective` is what the scheduler registry actually reported
//! *inside* the run — capture it with [`effective_threads`] from within
//! the `with_threads` closure. The two differ when a pool clamps, when
//! the inline (single-thread) executor is installed, or when a flag typo
//! never reached the pool; recording both makes that visible per entry.
//!
//! The default path is `BENCH_semisort.json` in the current directory;
//! `--trajectory <path>` overrides it and `--trajectory none` disables
//! appending.

use std::fs::OpenOptions;
use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use semisort::Json;

/// Default trajectory file name (JSONL despite the extension — one run
/// record per line, which is what longitudinal tooling expects).
pub const DEFAULT_TRAJECTORY: &str = "BENCH_semisort.json";

/// Short git revision of the working tree (`git describe --always
/// --dirty`), or `"unknown"` outside a repo / without git.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch.
pub fn unix_ts() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Worker count the scheduler registry reports for the current context.
/// Call this *inside* the benchmark's `with_threads` closure so it sees
/// the pool the run actually executed on, not the process default.
pub fn effective_threads() -> usize {
    rayon::current_num_threads()
}

/// Wrap one run's stats JSON in a `semisort-bench-v1` run record.
/// `threads` is the requested count (flag echo); `threads_effective` is
/// the registry-reported count from inside the run.
pub fn run_record(
    bin: &str,
    threads: usize,
    threads_effective: usize,
    wall_s: f64,
    stats: Json,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("semisort-bench-v1")),
        ("ts_unix".into(), Json::num(unix_ts())),
        ("git".into(), Json::str(git_describe())),
        ("bin".into(), Json::str(bin)),
        ("threads".into(), Json::num(threads as u64)),
        (
            "threads_effective".into(),
            Json::num(threads_effective as u64),
        ),
        ("wall_s".into(), Json::Num(wall_s)),
        ("stats".into(), stats),
    ])
}

/// Wrap a sustained-throughput service run (the `semisortd` load
/// generator) in a `semisort-bench-v1` run record. On top of the common
/// members it carries `records_per_s` and the request-latency quantiles
/// `latency_p50_s` / `latency_p99_s`; `stats` is the server's final
/// `semisort-stats-v2` object, whose `service` section holds the
/// shed/poison/drain counters for the same run.
pub fn service_record(
    bin: &str,
    threads: usize,
    wall_s: f64,
    records_per_s: f64,
    latency_p50_s: f64,
    latency_p99_s: f64,
    stats: Json,
) -> Json {
    let Json::Obj(mut members) = run_record(bin, threads, threads, wall_s, stats) else {
        unreachable!("run_record always returns an object");
    };
    let at = members.len() - 1; // keep "stats" last
    members.insert(at, ("records_per_s".into(), Json::Num(records_per_s)));
    members.insert(at + 1, ("latency_p50_s".into(), Json::Num(latency_p50_s)));
    members.insert(at + 2, ("latency_p99_s".into(), Json::Num(latency_p99_s)));
    Json::Obj(members)
}

/// Append one record as a single line to `path` (creating the file on
/// first use). `path == "none"` disables the append; I/O errors are
/// reported on stderr but never fail the benchmark.
pub fn append_line(path: &str, record: &Json) {
    if path == "none" {
        return;
    }
    let line = record.to_string();
    debug_assert!(!line.contains('\n'), "records must be single-line");
    let res = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        eprintln!("trajectory: cannot append to {path}: {e}");
    }
}

/// Shared tail of every harness binary: write `--stats-json` (when
/// requested) and append one trajectory run record. The stats file holds
/// the bare `semisort-stats-v2` object; the trajectory line wraps it.
/// `threads_effective` should come from [`effective_threads`] called
/// inside the run closure.
pub fn emit(
    args: &crate::Args,
    bin: &str,
    threads: usize,
    threads_effective: usize,
    wall_s: f64,
    stats: &semisort::SemisortStats,
) {
    let json = stats.to_json();
    if let Some(path) = &args.stats_json {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("stats-json: cannot write {path}: {e}");
        }
    }
    append_line(
        &args.trajectory,
        &run_record(bin, threads, threads_effective, wall_s, json),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_record_has_all_members() {
        let stats = Json::Obj(vec![("n".into(), Json::num(5))]);
        let r = run_record("testbin", 4, 3, 1.5, stats);
        assert_eq!(
            r.get("schema").and_then(Json::as_str),
            Some("semisort-bench-v1")
        );
        assert_eq!(r.get("bin").and_then(Json::as_str), Some("testbin"));
        assert_eq!(r.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(r.get("threads_effective").and_then(Json::as_u64), Some(3));
        assert_eq!(r.get("wall_s").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            r.get("stats")
                .and_then(|s| s.get("n"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert!(r.get("ts_unix").is_some() && r.get("git").is_some());
    }

    #[test]
    fn records_round_trip_as_jsonl() {
        let r = run_record("b", 1, 1, 0.25, Json::Obj(vec![]));
        let line = r.to_string();
        assert!(!line.contains('\n'));
        let back = Json::parse(&line).expect("parse back");
        assert_eq!(back.get("threads").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn service_record_extends_run_record() {
        let r = service_record(
            "semisortd-load",
            8,
            2.0,
            1.25e6,
            0.004,
            0.021,
            Json::Obj(vec![]),
        );
        assert_eq!(
            r.get("schema").and_then(Json::as_str),
            Some("semisort-bench-v1")
        );
        assert_eq!(r.get("records_per_s").and_then(Json::as_f64), Some(1.25e6));
        assert_eq!(r.get("latency_p50_s").and_then(Json::as_f64), Some(0.004));
        assert_eq!(r.get("latency_p99_s").and_then(Json::as_f64), Some(0.021));
        assert!(r.get("stats").is_some());
        // Still one line of JSONL.
        assert!(!r.to_string().contains('\n'));
    }

    #[test]
    fn append_to_none_is_noop() {
        append_line("none", &Json::Null); // must not create a file "none"
        assert!(!std::path::Path::new("none").exists());
    }

    #[test]
    fn append_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join(format!("semisort-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        append_line(p, &run_record("a", 1, 1, 0.1, Json::Obj(vec![])));
        append_line(p, &run_record("b", 2, 2, 0.2, Json::Obj(vec![])));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            Json::parse(l).expect("each line parses");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
