//! End-to-end semisort benches across distributions, against the
//! sequential baselines and the scatter+pack floor.

use baselines::scatter_pack::scatter_and_pack;
use baselines::{seq_hash_semisort, seq_two_phase_semisort};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, Distribution};

const N: usize = 500_000;

fn inputs() -> Vec<(&'static str, Vec<(u64, u64)>)> {
    vec![
        (
            "uniform_all_light",
            generate(Distribution::Uniform { n: N as u64 }, N, 1),
        ),
        (
            "exp_mostly_heavy",
            generate(
                Distribution::Exponential {
                    lambda: N as f64 / 1000.0,
                },
                N,
                1,
            ),
        ),
        (
            "uniform_all_heavy",
            generate(Distribution::Uniform { n: 10 }, N, 1),
        ),
        (
            "zipfian_mixed",
            generate(Distribution::Zipfian { m: 1_000_000 }, N, 1),
        ),
    ]
}

fn bench_semisort(c: &mut Criterion) {
    let cfg = SemisortConfig::default();
    let mut g = c.benchmark_group("semisort_500k");
    g.throughput(Throughput::Elements(N as u64));
    for (dist, records) in inputs() {
        g.bench_with_input(BenchmarkId::new("semisort", dist), &records, |b, r| {
            b.iter(|| try_semisort_pairs(r, &cfg).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("seq_hash", dist), &records, |b, r| {
            b.iter(|| seq_hash_semisort(r))
        });
        g.bench_with_input(BenchmarkId::new("seq_two_phase", dist), &records, |b, r| {
            b.iter(|| seq_two_phase_semisort(r))
        });
        g.bench_with_input(BenchmarkId::new("scatter_pack", dist), &records, |b, r| {
            b.iter(|| scatter_and_pack(r, 7).0)
        });
    }
    g.finish();
}

fn bench_api_level(c: &mut Criterion) {
    let cfg = SemisortConfig::default();
    let items: Vec<(u32, u64)> = (0..N as u64)
        .map(|i| (((i * 31) % 10_000) as u32, i))
        .collect();
    let mut g = c.benchmark_group("api_500k");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("group_by", |b| {
        b.iter(|| semisort::try_group_by(&items, |t| t.0, &cfg).unwrap().len())
    });
    g.bench_function("reduce_by_key_sum", |b| {
        b.iter(|| {
            semisort::try_reduce_by_key(&items, |t| t.0, 0u64, |a, t| a + t.1, &cfg)
                .unwrap()
                .len()
        })
    });
    g.bench_function("stable_semisort", |b| {
        b.iter(|| {
            semisort::try_semisort_stable_by_key(&items, |t| t.0, &cfg)
                .unwrap()
                .len()
        })
    });
    // Bounded integer keys: the counting-sort fast path vs the general path.
    let bounded: Vec<(u64, u64)> = items.iter().map(|&(k, v)| (k as u64, v)).collect();
    g.bench_function("bounded_counting_path", |b| {
        b.iter(|| semisort::semisort_bounded(&bounded, 10_000).len())
    });
    g.bench_function("general_path_same_input", |b| {
        let hashed: Vec<(u64, u64)> = bounded
            .iter()
            .map(|&(k, v)| (parlay::hash64(k), v))
            .collect();
        b.iter(|| semisort::try_semisort_pairs(&hashed, &cfg).unwrap().len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_semisort, bench_api_level
}
criterion_main!(benches);
