//! Criterion microbenches for the parallel primitives substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parlay::counting_sort::counting_sort_into;
use parlay::hash64;
use parlay::hash_table::PhaseConcurrentMap;

const SIZES: [usize; 2] = [100_000, 1_000_000];

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_add_exclusive");
    for &n in &SIZES {
        let input: Vec<usize> = (0..n).map(|i| i % 7).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                parlay::scan_add_exclusive(&mut v)
            })
        });
    }
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack");
    for &n in &SIZES {
        let input: Vec<u64> = (0..n as u64).map(hash64).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| parlay::pack(input, |_, &x| x % 2 == 0))
        });
    }
    g.finish();
}

fn bench_counting_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("counting_sort_256");
    for &n in &SIZES {
        let input: Vec<u64> = (0..n as u64).map(|i| hash64(i) % 256).collect();
        let mut out = vec![0u64; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| counting_sort_into(input, &mut out, 256, |&x| x as usize))
        });
    }
    g.finish();
}

fn bench_hash_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_table");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("insert_100k", |b| {
        b.iter(|| {
            let t = PhaseConcurrentMap::<u64>::new(n);
            for k in 1..=n as u64 {
                t.insert(k, k);
            }
            t
        })
    });
    let t = PhaseConcurrentMap::<u64>::new(n);
    for k in 1..=n as u64 {
        t.insert(k, k);
    }
    g.bench_function("lookup_100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for k in 1..=n as u64 {
                hits += t.lookup(k).is_some() as u64;
            }
            hits
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram_256");
    for &n in &SIZES {
        let keys: Vec<usize> = (0..n).map(|i| (hash64(i as u64) % 256) as usize).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| parlay::histogram::histogram(keys, 256))
        });
    }
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce_sum");
    for &n in &SIZES {
        let v: Vec<u64> = (0..n as u64).map(hash64).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| parlay::reduce::sum_u64(v))
        });
    }
    g.finish();
}

fn bench_flatten(c: &mut Criterion) {
    let nested: Vec<Vec<u64>> = (0..10_000u64).map(|i| (0..(i % 200)).collect()).collect();
    let total: u64 = nested.iter().map(|v| v.len() as u64).sum();
    let mut g = c.benchmark_group("flatten_ragged");
    g.throughput(Throughput::Elements(total));
    g.bench_function("10k_lists", |b| {
        b.iter(|| parlay::flatten::flatten(&nested))
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_shuffle");
    for &n in &SIZES {
        let v: Vec<u64> = (0..n as u64).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| {
                let mut w = v.clone();
                parlay::shuffle::random_shuffle(&mut w, 7);
                w
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_scan, bench_pack, bench_counting_sort, bench_hash_table,
              bench_histogram, bench_reduce, bench_flatten, bench_shuffle
}
criterion_main!(benches);
