//! Criterion benches for the sorting algorithms (the paper's baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parlay::radix_sort::radix_sort_pairs;
use parlay::sample_sort::sample_sort_pairs;
use rayon::slice::ParallelSliceMut;
use workloads::{generate, Distribution};

const N: usize = 500_000;

fn inputs() -> Vec<(&'static str, Vec<(u64, u64)>)> {
    vec![
        (
            "uniform",
            generate(Distribution::Uniform { n: N as u64 }, N, 1),
        ),
        (
            "exponential",
            generate(
                Distribution::Exponential {
                    lambda: N as f64 / 1000.0,
                },
                N,
                1,
            ),
        ),
        (
            "zipfian",
            generate(Distribution::Zipfian { m: 100_000 }, N, 1),
        ),
    ]
}

fn bench_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sorts_500k");
    g.throughput(Throughput::Elements(N as u64));
    for (dist, records) in inputs() {
        g.bench_with_input(BenchmarkId::new("radix", dist), &records, |b, r| {
            b.iter(|| {
                let mut v = r.clone();
                radix_sort_pairs(&mut v);
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("sample", dist), &records, |b, r| {
            b.iter(|| {
                let mut v = r.clone();
                sample_sort_pairs(&mut v);
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("std_par", dist), &records, |b, r| {
            b.iter(|| {
                let mut v = r.clone();
                v.par_sort_unstable_by_key(|x| x.0);
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("merge", dist), &records, |b, r| {
            b.iter(|| {
                let mut v = r.clone();
                parlay::merge::merge_sort_by(&mut v, |x, y| x.0 < y.0);
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("rr_integer", dist), &records, |b, r| {
            b.iter(|| {
                let mut v = r.clone();
                parlay::rr_sort::rr_sort_by_key(&mut v, 64, |p| p.0);
                v
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_sorts
}
criterion_main!(benches);
