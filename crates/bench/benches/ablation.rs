//! Criterion ablations of the §4 design choices (see also the `ablation`
//! harness binary, which prints a paper-style sweep table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use semisort::{
    try_semisort_pairs, LocalSortAlgo, ProbeStrategy, ScatterConfig, ScatterStrategy,
    SemisortConfig,
};
use workloads::{generate, Distribution};

const N: usize = 500_000;

fn bench_ablation(c: &mut Criterion) {
    let records = generate(Distribution::Zipfian { m: 1_000_000 }, N, 1);
    let base = SemisortConfig::default();
    let mut g = c.benchmark_group("ablation_zipf_500k");
    g.throughput(Throughput::Elements(N as u64));

    let variants: Vec<(&str, SemisortConfig)> = vec![
        ("default", base),
        (
            "no_merge",
            SemisortConfig {
                merge_light_buckets: false,
                ..base
            },
        ),
        (
            "random_probe",
            SemisortConfig {
                probe_strategy: ProbeStrategy::Random,
                ..base
            },
        ),
        (
            "delta_4",
            SemisortConfig {
                heavy_threshold: 4,
                ..base
            },
        ),
        (
            "delta_64",
            SemisortConfig {
                heavy_threshold: 64,
                ..base
            },
        ),
        (
            "p_1_4",
            SemisortConfig {
                sample_shift: 2,
                ..base
            },
        ),
        (
            "p_1_64",
            SemisortConfig {
                sample_shift: 6,
                ..base
            },
        ),
        (
            "local_counting",
            SemisortConfig {
                local_sort_algo: LocalSortAlgo::Counting,
                ..base
            },
        ),
        (
            "blocked_scatter",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::Blocked,
                    ..ScatterConfig::default()
                },
                ..base
            },
        ),
        (
            "blocked_scatter_b64",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::Blocked,
                    block: 64,
                    ..ScatterConfig::default()
                },
                ..base
            },
        ),
        (
            "inplace_scatter",
            SemisortConfig {
                scatter: ScatterConfig {
                    strategy: ScatterStrategy::InPlace,
                    ..ScatterConfig::default()
                },
                ..base
            },
        ),
        (
            "prefetch_off",
            SemisortConfig {
                scatter: ScatterConfig {
                    prefetch_distance: 0,
                    ..ScatterConfig::default()
                },
                ..base
            },
        ),
    ];
    for (name, cfg) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| try_semisort_pairs(&records, cfg).unwrap())
        });
    }
    g.finish();
}

/// RandomCas vs Blocked vs InPlace on the three shapes that stress the
/// scatter differently: all-light uniform, power-law (Zipfian), and
/// all-equal.
fn bench_scatter_strategies(c: &mut Criterion) {
    let inputs = [
        ("uniform", Distribution::Uniform { n: N as u64 }),
        ("zipf", Distribution::Zipfian { m: 1_000_000 }),
        ("all_equal", Distribution::Uniform { n: 1 }),
    ];
    let mut g = c.benchmark_group("scatter_strategy_500k");
    g.throughput(Throughput::Elements(N as u64));
    for (dist_name, dist) in inputs {
        let records = generate(dist, N, 1);
        for (strat_name, strategy) in [
            ("random_cas", ScatterStrategy::RandomCas),
            ("blocked", ScatterStrategy::Blocked),
            ("inplace", ScatterStrategy::InPlace),
        ] {
            let cfg = SemisortConfig {
                scatter: ScatterConfig {
                    strategy,
                    ..ScatterConfig::default()
                },
                ..SemisortConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(dist_name, strat_name), &cfg, |b, cfg| {
                b.iter(|| try_semisort_pairs(&records, cfg).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_ablation, bench_scatter_strategies
}
criterion_main!(benches);
