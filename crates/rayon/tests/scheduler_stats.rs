//! Integration checks for the `trace` module against a real pool: the
//! counters must reflect actual scheduler activity, the ring must drain,
//! and the off-by-default event gate must hold.

#![cfg(not(miri))]

use rayon::trace::TraceEventKind;
use rayon::ThreadPoolBuilder;

/// Enough forked work to force deque traffic and (on any schedule) some
/// hunting between workers.
fn churn(depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (a, b) = rayon::join(|| churn(depth - 1), || churn(depth - 1));
    a + b
}

#[test]
fn pool_counters_reflect_join_traffic() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    assert_eq!(pool.install(|| churn(12)), 1 << 12);
    let stats = pool.scheduler_stats().expect("real pool has stats");
    assert_eq!(stats.num_threads, 4);
    assert_eq!(stats.workers.len(), 4);
    // The top-level install was injected from this (external) thread.
    assert!(stats.injector_submissions >= 1);
    assert_eq!(
        stats.workers.iter().map(|w| w.injector_pops).sum::<u64>(),
        stats.injector_submissions,
        "a quiescent pool has drained every injected job"
    );
    // 2^12 joins means thousands of lazy-split pushes; each push was
    // either popped back or stolen, never lost.
    let pushes = stats.total_pushes();
    assert!(pushes >= (1 << 12) - 1, "pushes = {pushes}");
    assert_eq!(
        pushes,
        stats.total_pops() + stats.total_steals(),
        "every push is accounted for by exactly one pop or steal"
    );
    for w in &stats.workers {
        assert!(
            w.steal_attempts >= w.steal_successes(),
            "attempts ({}) can never undercount successes ({})",
            w.steal_attempts,
            w.steal_successes()
        );
        assert_eq!(w.steals_from.len(), 4);
        assert_eq!(w.steals_from[0..1].len(), 1);
    }
    // No worker steals from itself.
    for (i, w) in stats.workers.iter().enumerate() {
        assert_eq!(w.steals_from[i], 0, "worker {i} stole from itself");
    }
}

#[test]
fn delta_between_runs_isolates_the_second_run() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    pool.install(|| churn(8));
    let before = pool.scheduler_stats().unwrap();
    pool.install(|| churn(10));
    let after = pool.scheduler_stats().unwrap();
    let d = after.delta(&before);
    let pushes = d.total_pushes();
    // The second run alone forks 2^10 joins.
    assert!(pushes >= (1 << 10) - 1, "delta pushes = {pushes}");
    assert_eq!(pushes, d.total_pops() + d.total_steals());
}

#[test]
fn ring_events_gated_off_by_default_and_drain_when_enabled() {
    // Default-off: no events captured even under heavy churn. (CI does not
    // set RAYON_TRACE; if a local environment does, the setter wins.)
    rayon::trace::set_events_enabled(false);
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    pool.install(|| churn(12));
    let stats = pool.scheduler_stats().unwrap();
    assert!(
        stats.events().next().is_none(),
        "events recorded while capture was off"
    );

    // Enabled: parks and/or steals show up as ring events with plausible
    // timestamps. Parks are guaranteed here — the pool idles after install
    // returns, and this snapshot races nothing (we only need >= 1 park,
    // which the post-install idle period produces deterministically after
    // a short wait).
    rayon::trace::set_events_enabled(true);
    pool.install(|| churn(12));
    std::thread::sleep(std::time::Duration::from_millis(20));
    let stats = pool.scheduler_stats().unwrap();
    rayon::trace::set_events_enabled(false);
    let events: Vec<_> = stats.events().copied().collect();
    assert!(!events.is_empty(), "no ring events captured");
    assert!(
        events.iter().any(|e| e.kind == TraceEventKind::Park),
        "idle pool recorded no parks"
    );
    for e in &events {
        assert!(e.worker < 4);
        if e.kind == TraceEventKind::StealSuccess {
            assert!((e.arg as usize) < 4, "steal victim out of range");
            assert_ne!(e.arg as usize, e.worker, "stole from self");
        }
    }
    // Per-worker event streams are in nondecreasing start order (single
    // writer, monotone clock).
    for w in &stats.workers {
        for pair in w.events.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
    }
}

#[test]
fn worker_index_visible_inside_pool_and_absent_outside() {
    assert_eq!(rayon::current_worker_index(), None);
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let idx = pool.install(rayon::current_worker_index);
    assert!(matches!(idx, Some(i) if i < 3));
}
