//! Exhaustive race model of the Chase–Lev work-stealing deque protocol.
//!
//! The scheduler's correctness rests on one concurrency claim the
//! differential tests can only sample: **every job pushed into a deque is
//! executed exactly once**, even when the owner's `pop` and a thief's
//! `steal` race for the last element. The claim protocol (`src/deque.rs`)
//! resolves that race with a CAS on `top`, fenced Dekker-style against the
//! owner's `bottom` decrement.
//!
//! These tests re-state the deque over `loom` atomics (the in-tree shim,
//! `crates/loom`) and run the contended window — owner publish/pop vs.
//! thief steal — under **every** interleaving of 2 threads. The model
//! bodies mirror `src/deque.rs` line-for-line (same loads, same fences,
//! same CAS, same bottom restores) so a protocol-level regression there has
//! to break the model too. Jobs are plain ids; a std-atomic claim counter
//! per id plays the role of "executed" (instrumentation, not protocol — no
//! schedule points).
//!
//! The final test injects the classic broken steal — claiming `top` with a
//! plain store instead of a CAS, i.e. skipping validation of the racy slot
//! read — and asserts the explorer *catches* the resulting duplicate
//! execution. A harness that cannot see that would make the green models
//! above vacuous (the PR 5 negative-test pattern, `semisort`'s
//! `race_model.rs`).
//!
//! Not run under Miri: the explorer spawns thousands of real scheduled
//! threads, which Miri executes orders of magnitude too slowly; Miri
//! covers the scheduler's sequential collapse in `miri_suite.rs`.

#![cfg(not(miri))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};

use loom::sync::atomic::{fence, AtomicIsize, AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Model ring size (production: 1024; the protocol is capacity-blind, the
/// models never hold more than 2 elements).
const CAP: usize = 4;

/// Model mirror of `deque::Deque`: `top`/`bottom` logical indices over a
/// small ring of job-id slots.
struct ModelDeque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    slots: Vec<AtomicU64>,
}

/// Outcome of a model steal attempt, mirroring `deque::Steal`.
enum Steal {
    Empty,
    Retry,
    Success(u64),
}

impl ModelDeque {
    fn new() -> Self {
        ModelDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..CAP).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn slot(&self, index: isize) -> &AtomicU64 {
        &self.slots[(index as usize) & (CAP - 1)]
    }

    /// Mirror of `Deque::push` (owner only). The models never fill the
    /// ring, so the full-check is an assert rather than an `Err` path.
    fn push(&self, job: u64) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        assert!(b - t < CAP as isize, "model deque overfilled");
        self.slot(b).store(job, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Mirror of `Deque::pop` (owner only): decrement `bottom`, fence,
    /// read `top`, CAS-claim when exactly one element remains.
    fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let job = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        Some(job)
    }

    /// Mirror of `Deque::steal` (any thread): read `top`, fence, read
    /// `bottom`, racy slot read validated by the CAS on `top`.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let job = self.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(job)
    }

    /// BROKEN steal for the negative test: the racy slot read is never
    /// validated — `top` is claimed with a plain store, so a thief racing
    /// the owner's last-element pop can both "win".
    fn steal_broken(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let job = self.slot(t).load(Ordering::Relaxed);
        self.top.store(t + 1, Ordering::SeqCst);
        Steal::Success(job)
    }
}

/// Claim job `id` (ids are 1-based; index 0 of `claims` is unused).
fn claim(claims: &[AtomicUsize], id: u64) {
    claims[id as usize].fetch_add(1, StdOrdering::Relaxed);
}

/// After every model thread joined: each pushed job claimed exactly once —
/// never duplicated (two executors) and never lost (dropped job).
fn assert_exactly_once(claims: &[AtomicUsize], jobs: u64) {
    for id in 1..=jobs {
        let n = claims[id as usize].load(StdOrdering::Relaxed);
        assert_eq!(n, 1, "job {id} executed {n} times (must be exactly 1)");
    }
}

/// Steal in a loop until the attempt resolves (`Retry` means the CAS lost a
/// race that is guaranteed to have advanced `top`, so the loop terminates).
fn steal_resolved(deque: &ModelDeque, claims: &[AtomicUsize]) {
    loop {
        match deque.steal() {
            Steal::Success(job) => {
                claim(claims, job);
                return;
            }
            Steal::Empty => return,
            Steal::Retry => {}
        }
    }
}

/// Model mirror of the production trace cells (`src/trace.rs` via the
/// `registry.rs` wrappers): std atomics, instrumentation only — counting
/// introduces no schedule points, exactly like the single-writer relaxed
/// counters in production.
#[derive(Default)]
struct ModelTrace {
    pushes: AtomicUsize,
    pop_successes: AtomicUsize,
    steal_attempts: AtomicUsize,
    steal_retries: AtomicUsize,
    steal_successes: AtomicUsize,
}

impl ModelTrace {
    fn get(&self, c: &AtomicUsize) -> usize {
        c.load(StdOrdering::Relaxed)
    }
}

/// `WorkerThread::pop` mirror: count a pop only when the claim succeeded —
/// the same site production increments `pops`.
fn counted_pop(deque: &ModelDeque, trace: &ModelTrace, claims: &[AtomicUsize]) {
    if let Some(job) = deque.pop() {
        trace.pop_successes.fetch_add(1, StdOrdering::Relaxed);
        claim(claims, job);
    }
}

/// `WorkerThread::steal` mirror: every probe counts an attempt; `Retry`
/// and `Success` count at the same protocol points as production.
fn counted_steal_resolved(deque: &ModelDeque, trace: &ModelTrace, claims: &[AtomicUsize]) {
    loop {
        trace.steal_attempts.fetch_add(1, StdOrdering::Relaxed);
        match deque.steal() {
            Steal::Success(job) => {
                trace.steal_successes.fetch_add(1, StdOrdering::Relaxed);
                claim(claims, job);
                return;
            }
            Steal::Empty => return,
            Steal::Retry => {
                trace.steal_retries.fetch_add(1, StdOrdering::Relaxed);
            }
        }
    }
}

/// The trace-counter consistency claim: in every reachable schedule the
/// counters reconcile with the exactly-once protocol —
/// `pushes == pop_successes + steal_successes` once the deque is drained,
/// and each success is backed by a distinct attempt.
fn assert_trace_consistent(trace: &ModelTrace, pushed: usize) {
    let pops = trace.get(&trace.pop_successes);
    let steals = trace.get(&trace.steal_successes);
    let attempts = trace.get(&trace.steal_attempts);
    let retries = trace.get(&trace.steal_retries);
    assert_eq!(
        pops + steals,
        pushed,
        "claims ({pops} pops + {steals} steals) must equal pushes ({pushed})"
    );
    assert!(
        attempts >= steals + retries,
        "attempts ({attempts}) must cover successes ({steals}) and retries ({retries})"
    );
}

#[test]
fn trace_counters_consistent_with_last_element_race() {
    // The headline race again (owner publish+pop vs. thief steal on one
    // element), now with the production counter sites attached. Every
    // interleaving must leave the counters telling a story consistent with
    // exactly-once: the job's single execution appears as exactly one pop
    // OR one steal success, never both, never neither — so a SchedulerStats
    // snapshot of a quiescent pool can assert pushes == pops + steals.
    loom::model(|| {
        let deque = Arc::new(ModelDeque::new());
        let trace = Arc::new(ModelTrace::default());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());

        let owner = {
            let deque = deque.clone();
            let trace = trace.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                deque.push(1);
                trace.pushes.fetch_add(1, StdOrdering::Relaxed);
                counted_pop(&deque, &trace, &claims);
            })
        };
        let thief = {
            let deque = deque.clone();
            let trace = trace.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                counted_steal_resolved(&deque, &trace, &claims);
                counted_steal_resolved(&deque, &trace, &claims);
            })
        };
        owner.join().unwrap();
        thief.join().unwrap();
        assert_exactly_once(&claims, 1);
        assert_trace_consistent(&trace, 1);
    });
}

#[test]
fn trace_counters_consistent_with_two_element_drain() {
    // Two-element drain with counters: the owner's two pops and the
    // thief's resolved steal partition both jobs; the counters must sum to
    // the push count in every schedule, including those where the thief's
    // CAS loses and records a retry.
    loom::model(|| {
        let deque = Arc::new(ModelDeque::new());
        let trace = Arc::new(ModelTrace::default());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        deque.push(1);
        deque.push(2);
        trace.pushes.fetch_add(2, StdOrdering::Relaxed);

        let owner = {
            let deque = deque.clone();
            let trace = trace.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                for _ in 0..2 {
                    counted_pop(&deque, &trace, &claims);
                }
            })
        };
        let thief = {
            let deque = deque.clone();
            let trace = trace.clone();
            let claims = claims.clone();
            thread::spawn(move || counted_steal_resolved(&deque, &trace, &claims))
        };
        owner.join().unwrap();
        thief.join().unwrap();
        assert_exactly_once(&claims, 2);
        assert_trace_consistent(&trace, 2);
    });
}

#[test]
fn last_element_pop_vs_steal_is_exactly_once() {
    // The headline race: one element, the owner publishing it (push) and
    // immediately popping while a thief steals. Every interleaving of the
    // push's Release store, the pop's bottom decrement + CAS, and the
    // steal's fenced reads + CAS must hand job 1 to exactly one of them —
    // including the windows where the thief reads `bottom` before the push
    // publishes (Empty), and where both reach the CAS on `top` (one loses).
    loom::model(|| {
        let deque = Arc::new(ModelDeque::new());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());

        let owner = {
            let deque = deque.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                deque.push(1);
                if let Some(job) = deque.pop() {
                    claim(&claims, job);
                }
            })
        };
        let thief = {
            let deque = deque.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                // Two resolved attempts: the first may see Empty purely
                // because it ran before the push published.
                steal_resolved(&deque, &claims);
                steal_resolved(&deque, &claims);
            })
        };
        owner.join().unwrap();
        thief.join().unwrap();
        assert_exactly_once(&claims, 1);
    });
}

#[test]
fn two_element_drain_loses_and_duplicates_nothing() {
    // Two elements pre-published (sequential prelude), then the owner
    // drains bottom-up while a thief takes from the top. The owner's first
    // pop targets job 2 uncontended; the *second* pop and the thief then
    // race for job 1 through the CAS. No schedule may lose or duplicate
    // either job, and the owner's `bottom` restores must leave the deque
    // consistent for its own next pop.
    loom::model(|| {
        let deque = Arc::new(ModelDeque::new());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        deque.push(1);
        deque.push(2);

        let owner = {
            let deque = deque.clone();
            let claims = claims.clone();
            thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(job) = deque.pop() {
                        claim(&claims, job);
                    }
                }
            })
        };
        let thief = {
            let deque = deque.clone();
            let claims = claims.clone();
            thread::spawn(move || steal_resolved(&deque, &claims))
        };
        owner.join().unwrap();
        thief.join().unwrap();
        assert_exactly_once(&claims, 2);
    });
}

#[test]
fn unvalidated_steal_is_caught() {
    // Broken-protocol injection: a thief that claims `top` with a plain
    // store instead of the validating CAS. The explorer MUST find the
    // schedule where the thief's stale reads overlap the owner's
    // last-element pop and job 1 executes twice. If this test ever stops
    // failing inside the model, the harness has lost its power to see
    // deque races and the two green models above prove nothing.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let deque = Arc::new(ModelDeque::new());
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
            deque.push(1);

            let owner = {
                let deque = deque.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    if let Some(job) = deque.pop() {
                        claim(&claims, job);
                    }
                })
            };
            let thief = {
                let deque = deque.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    if let Steal::Success(job) = deque.steal_broken() {
                        claim(&claims, job);
                    }
                })
            };
            owner.join().unwrap();
            thief.join().unwrap();
            assert_exactly_once(&claims, 1);
        });
    }));
    assert!(
        result.is_err(),
        "the explorer failed to catch an injected unvalidated steal"
    );
}

/// Model mirror of `job::SpinLatch`: the executor stores the job result,
/// then Release-sets the flag; the joiner spins on an Acquire `probe` and,
/// once it sees `true`, must see the result store.
#[test]
fn spinlatch_set_probe_publishes_result() {
    use loom::sync::atomic::AtomicBool;
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let result = Arc::new(AtomicU64::new(0));
        let executor = {
            let flag = flag.clone();
            let result = result.clone();
            thread::spawn(move || {
                result.store(99, Ordering::Relaxed);
                flag.store(true, Ordering::Release);
            })
        };
        let joiner = {
            let flag = flag.clone();
            let result = result.clone();
            thread::spawn(move || {
                if flag.load(Ordering::Acquire) {
                    assert_eq!(
                        result.load(Ordering::Relaxed),
                        99,
                        "a set latch must publish the executor's result"
                    );
                }
            })
        };
        executor.join().unwrap();
        joiner.join().unwrap();
        assert!(flag.unsync_load(), "the latch must end set");
    });
}
