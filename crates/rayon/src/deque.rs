//! A Chase–Lev work-stealing deque over [`JobRef`] pointers.
//!
//! One deque per pool worker. The owner pushes and pops at the *bottom*
//! (LIFO — the hot path of `join`'s lazy task splitting); thieves steal
//! from the *top* (FIFO — they take the oldest, largest pending task) by
//! CAS-advancing `top`. The memory orderings follow Lê, Pop, Cohen &
//! Nardelli, *Correct and Efficient Work-Stealing for Weak Memory Models*
//! (PPoPP 2013); the exactly-once claim protocol — owner-pop and
//! thief-steal race on the last element through the CAS on `top` — is
//! model-checked exhaustively in `crates/rayon/tests/race_model.rs` and
//! race-tested under ThreadSanitizer in CI.
//!
//! The ring buffer is **fixed-capacity**: `push` on a full deque returns
//! the job to the caller, and `join` responds by running the task inline —
//! i.e. a join recursion deeper than [`CAPACITY`] degrades to sequential
//! execution instead of reallocating (growth would need epoch-style buffer
//! reclamation for racing thieves; a bounded deque needs none, and the
//! sequential degrade matches the semantics the workspace's algorithms
//! already tolerate).
//!
//! Why the racy slot read is sound: slots are `AtomicPtr` (so even a racy
//! read is a well-defined atomic load, never a torn value), and a slot at
//! ring index `i mod CAPACITY` is only *overwritten* by a push at bottom
//! `i + CAPACITY`, which the full-check admits only once `top > i`. A
//! thief that read slot `i` before the overwrite then fails its
//! `CAS(top: i → i+1)` (top already moved) and discards the stale value;
//! a thief that succeeds had `top == i` through the CAS, so no overwrite
//! had been admitted. The owner's `pop` reads the slot only at
//! `bottom - 1`, which no concurrent push can target.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::job::{JobHeader, JobRef};

/// Ring capacity (a power of two). Each pending `join` holds at most one
/// deque entry per stack frame, so even a 1024-deep *linear* join nest fits;
/// beyond it, pushes fail and joins run inline.
pub(crate) const CAPACITY: usize = 1024;

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race (another thief or the owner's pop advanced `top`);
    /// worth retrying after trying other victims.
    Retry,
    /// Won the top job.
    Success(JobRef),
}

/// The deque proper. `top`/`bottom` are monotonically increasing logical
/// indices (never wrapped); `bottom - top` is the current length and the
/// ring index is `index & (CAPACITY - 1)`. `isize` (not `usize`) because
/// `pop` decrements `bottom` before examining it, transiently taking
/// `bottom = top - 1` on an empty deque.
pub(crate) struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<JobHeader>]>,
}

impl Deque {
    pub(crate) fn new() -> Self {
        let slots = (0..CAPACITY)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots,
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicPtr<JobHeader> {
        &self.slots[(index as usize) & (CAPACITY - 1)]
    }

    /// Owner-only: push a job at the bottom. Returns `Err(job)` when the
    /// ring is full (the caller should run the job inline).
    ///
    /// # Safety
    ///
    /// May only be called by the deque's owning worker thread — `bottom`
    /// has a single writer.
    pub(crate) unsafe fn push(&self, job: JobRef) -> Result<(), JobRef> {
        // ORDERING: Relaxed — `bottom` has a single writer (this owner),
        // so our own last store is always visible.
        // publishes-via: the Release store of `bottom` below
        let b = self.bottom.load(Ordering::Relaxed);
        // ORDERING: Acquire pairs with the SeqCst CAS on `top` in
        // `steal`/`pop`, so the capacity check sees a current-enough top.
        let t = self.top.load(Ordering::Acquire);
        if b - t >= CAPACITY as isize {
            return Err(job);
        }
        // ORDERING: Relaxed slot store; it is published to thieves by the
        // Release `bottom` store below, never read before that.
        // publishes-via: the Release store of `bottom` below
        self.slot(b).store(job.as_ptr(), Ordering::Relaxed);
        // ORDERING: Release — a thief that Acquire-loads the new `bottom`
        // sees the slot store above.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed job, racing thieves for
    /// the last element via the CAS on `top`.
    ///
    /// # Safety
    ///
    /// May only be called by the deque's owning worker thread.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        // ORDERING: Relaxed single-writer read of our own `bottom`.
        // publishes-via: the SeqCst fence below (Dekker handshake)
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // ORDERING: Relaxed store; the SeqCst fence below orders it
        // against the `top` load for the Dekker handshake with `steal`.
        // publishes-via: the SeqCst fence below
        self.bottom.store(b, Ordering::Relaxed);
        // ORDERING: SeqCst fence — the `bottom` store above and the `top`
        // load below must not reorder; this is the Dekker-style handshake
        // with `steal`'s (load top, fence, load bottom) that makes owner
        // and thief agree on who saw whom when one element remains.
        fence(Ordering::SeqCst);
        // ORDERING: Relaxed `top` read, ordered by the fence above.
        // publishes-via: the SeqCst fence above
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // ORDERING: Relaxed single-writer undo of the decrement;
            // thieves re-validate through their own fence + CAS.
            // publishes-via: the SeqCst fence in the next pop
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // ORDERING: Relaxed owner read of a slot we pushed; for the
        // contended last element the CAS below is the claim.
        // publishes-via: our own program order (single writer)
        let ptr = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Exactly one element left: claim it against concurrent
            // thieves by advancing `top` ourselves. Losing means a thief
            // already owns the job.
            // ORDERING: SeqCst success keeps the claim in the same total
            // order as `steal`'s CAS (exactly-once for the last element);
            // Relaxed failure means a thief already owns the job.
            // publishes-via: this CAS's own SeqCst success edge
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // ORDERING: Relaxed single-writer reset of `bottom` to empty.
            // publishes-via: the SeqCst fence in the next pop
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        // SAFETY: `ptr` was stored by `push` from a live JobRef; the claim
        // protocol above makes us its sole taker.
        Some(unsafe { JobRef::from_ptr(ptr) })
    }

    /// Thief path: try to claim the oldest job. Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        // ORDERING: Acquire `top` read — sees prior thieves' claims.
        let t = self.top.load(Ordering::Acquire);
        // ORDERING: SeqCst fence — pairs with the fence in `pop` (the
        // other half of the Dekker handshake).
        fence(Ordering::SeqCst);
        // ORDERING: Acquire pairs with `push`'s Release `bottom` store so
        // the slot contents below are visible.
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // ORDERING: Relaxed racy read — validated by the CAS below; see
        // the module docs for why a successful CAS implies the value read
        // was the live one.
        // publishes-via: push's Release `bottom` store (Acquire-read above)
        let ptr = self.slot(t).load(Ordering::Relaxed);
        // ORDERING: SeqCst success puts this claim in the single total
        // order with pop's last-element CAS; Relaxed failure just retries.
        // publishes-via: this CAS's own SeqCst success edge
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // SAFETY: the CAS claimed logical index `t` exclusively, and the
        // pointer read cannot have been overwritten before a successful
        // claim (module docs).
        Steal::Success(unsafe { JobRef::from_ptr(ptr) })
    }

    /// Whether the deque currently appears non-empty (a wake-up heuristic
    /// for the sleep protocol, not a claim).
    pub(crate) fn looks_nonempty(&self) -> bool {
        // ORDERING: Relaxed heuristic reads; a stale answer only affects
        // wake-up timing, never correctness — stealing re-validates.
        // publishes-via: none needed — advisory snapshot only
        let t = self.top.load(Ordering::Relaxed);
        // ORDERING: as above. publishes-via: none needed
        let b = self.bottom.load(Ordering::Relaxed);
        b > t
    }
}
