//! Jobs and latches: the units of schedulable work and the completion
//! signals that connect a forked task back to the frame that spawned it.
//!
//! A *job* is a type-erased pointer to a stack- (or caller-) owned
//! [`StackJob`], laid out so the first field is a [`JobHeader`] holding the
//! monomorphized execute function. The deque and the injector move bare
//! [`JobRef`] pointers; whoever wins a job (owner pop, thief steal, or a
//! worker draining the injector) calls [`JobRef::execute`] exactly once,
//! which runs the closure under `catch_unwind`, stores the result (or the
//! panic payload) back into the `StackJob`, and sets the job's latch.
//!
//! Two latch flavors exist, matching the two kinds of waiter:
//!
//! - [`SpinLatch`] — the waiter is a pool worker; it never blocks on the
//!   latch directly but keeps stealing work between probes (see
//!   `WorkerThread::wait_until`), parking through the registry's sleep
//!   protocol when there is nothing to steal. `set` therefore pokes the
//!   registry's wake path.
//! - [`LockLatch`] — the waiter is an external (non-worker) thread blocked
//!   in [`ThreadPool::install`](crate::ThreadPool::install) or a top-level
//!   `join`; it sleeps on a private mutex + condvar.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use crate::registry::Registry;

/// First field of every job type: the type-erased execute entry point.
pub(crate) struct JobHeader {
    execute_fn: unsafe fn(*const JobHeader),
}

/// A type-erased pointer to a live job. The pointee is owned by the frame
/// that created it (a `join` or `install` frame), which outlives the job's
/// execution because it does not return until the job's latch is set.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef(*const JobHeader);

// SAFETY: a JobRef is a pointer to a StackJob whose owning frame blocks
// (or work-steals) until the job's latch is set, so the pointee stays live
// for any thread that receives the ref through the deque or injector; the
// exactly-once discipline of those channels ensures a single executor.
unsafe impl Send for JobRef {}

impl JobRef {
    /// The raw header pointer, for storage in the deque's `AtomicPtr` slots.
    pub(crate) fn as_ptr(self) -> *mut JobHeader {
        self.0 as *mut JobHeader
    }

    /// Rebuild a ref from a pointer previously obtained via [`Self::as_ptr`].
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `as_ptr` on a job whose owning frame is
    /// still waiting on its latch (the deque/injector protocols guarantee
    /// this for every pointer they hand out).
    pub(crate) unsafe fn from_ptr(ptr: *mut JobHeader) -> Self {
        JobRef(ptr)
    }

    /// Run the job. Consumes the ref conceptually: the pointee's latch is
    /// set when this returns and the owning frame may free it immediately.
    ///
    /// # Safety
    ///
    /// Must be called at most once per job, and only while the owning
    /// frame is still waiting on the job's latch.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: the pointee is live (owner still waiting) and this is the
        // job's single execution, per this function's contract.
        unsafe { ((*self.0).execute_fn)(self.0) }
    }
}

/// Result slot of a job: empty until executed, then the value or the
/// panic payload.
pub(crate) enum JobResult<R> {
    Pending,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

impl<R> JobResult<R> {
    /// Return the value or resume the captured panic on the calling thread.
    pub(crate) fn unwrap_or_propagate(self) -> R {
        match self {
            JobResult::Ok(v) => v,
            JobResult::Panic(p) => panic::resume_unwind(p),
            JobResult::Pending => unreachable!("job result read before the latch was set"),
        }
    }
}

/// A job whose storage lives in the spawning frame. `#[repr(C)]` pins the
/// header at offset 0 so a `*const JobHeader` is a `*const Self`.
#[repr(C)]
pub(crate) struct StackJob<L, F, R> {
    header: JobHeader,
    /// Completion signal; public to the module so waiters can probe it.
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

// SAFETY: the UnsafeCell fields are accessed under the job protocol — the
// closure is taken once by the single executor, and the result is read by
// the owner only after the latch's Acquire-ordered probe observes `set` —
// so no two threads touch a cell concurrently.
unsafe impl<L: Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: L) -> Self {
        StackJob {
            header: JobHeader {
                execute_fn: Self::execute_from,
            },
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    /// A type-erased ref to this job.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive (and not move it) until the latch
    /// is set, and must ensure the ref is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef(&self.header as *const JobHeader)
    }

    /// The type-erased execute entry: run the closure, store the outcome,
    /// set the latch. The latch store is last — the owning frame may free
    /// the whole job the moment the latch reads as set.
    unsafe fn execute_from(ptr: *const JobHeader) {
        let this = ptr as *const Self;
        // SAFETY: `ptr` came from `as_job_ref` (repr(C): header at offset
        // 0), the pointee is live, and this is the job's only execution, so
        // the cells are unaliased here.
        unsafe {
            let func = (*(*this).func.get()).take().expect("job executed twice");
            let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
                Ok(v) => JobResult::Ok(v),
                Err(payload) => JobResult::Panic(payload),
            };
            *(*this).result.get() = result;
            Latch::set(&(*this).latch);
        }
    }

    /// Take the closure back out of a job that was *not* executed (popped
    /// unstolen from the deque, or never pushed at all).
    ///
    /// # Safety
    ///
    /// The job must not have been executed and must not be executable by
    /// anyone else (its ref is out of every queue).
    pub(crate) unsafe fn take_func(&self) -> F {
        // SAFETY: per the contract no executor raced us to the cell.
        unsafe {
            (*self.func.get())
                .take()
                .expect("job closure already taken")
        }
    }

    /// Read the result of an executed job.
    ///
    /// # Safety
    ///
    /// The job's latch must have been observed set (with Acquire ordering),
    /// which happens-after the executor's result store.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        // SAFETY: latch set ⇒ the executor is done with the cell.
        unsafe { std::mem::replace(&mut *self.result.get(), JobResult::Pending) }
    }
}

/// A completion signal. `set` takes a raw pointer because the waiting frame
/// may free the latch the instant the `set` flag becomes visible: the
/// implementation must not touch `this` after the store that publishes it
/// (any registry poke must go through a pointer copied out beforehand).
pub(crate) trait Latch {
    /// Mark the latch set and wake its waiter.
    ///
    /// # Safety
    ///
    /// `this` must point to a live latch; after the publishing store the
    /// pointee may be freed concurrently, so implementations must not read
    /// or write through `this` past that point.
    unsafe fn set(this: *const Self);
}

/// Latch for a waiter that is a pool worker: a flag plus a registry poke so
/// a parked waiter wakes. The registry outlives the latch: both the waiter
/// and the executor are workers of that registry, each holding it alive.
pub(crate) struct SpinLatch {
    flag: AtomicBool,
    registry: *const Registry,
}

// SAFETY: the registry pointer is only dereferenced inside `set`, where the
// executing worker's own Arc keeps the registry alive; the flag is atomic.
unsafe impl Sync for SpinLatch {}
// SAFETY: as above — the latch carries no thread-affine state.
unsafe impl Send for SpinLatch {}

impl SpinLatch {
    pub(crate) fn new(registry: &Registry) -> Self {
        SpinLatch {
            flag: AtomicBool::new(false),
            registry,
        }
    }

    /// Has the latch been set? Acquire: a `true` result orders the
    /// executor's result store before the caller's result read.
    pub(crate) fn probe(&self) -> bool {
        // ORDERING: Acquire pairs with the Release in `Latch::set`; a
        // `true` result makes the executor's result write visible.
        self.flag.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    unsafe fn set(this: *const Self) {
        // Copy the registry pointer out BEFORE publishing: after the store,
        // the waiter may observe the flag, return from join, and free the
        // latch while we are still here.
        // SAFETY: `this` is live until the publishing store below.
        let registry = unsafe { (*this).registry };
        // SAFETY: as above.
        // ORDERING: Release publishes the job's result to the Acquire
        // `probe` on the joining thread.
        unsafe { (*this).flag.store(true, Ordering::Release) };
        // SAFETY: `registry` outlives the latch — the executor is one of
        // its workers and holds an Arc to it for the whole main loop.
        unsafe { (*registry).notify_all() };
    }
}

/// Latch for an external waiter: mutex + condvar blocking wait.
pub(crate) struct LockLatch {
    m: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            m: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Block until the latch is set.
    pub(crate) fn wait(&self) {
        let mut set = self.m.lock().unwrap_or_else(PoisonError::into_inner);
        while !*set {
            set = self.cv.wait(set).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Latch for LockLatch {
    unsafe fn set(this: *const Self) {
        // Publish under the mutex: the waiter can only observe `true` (and
        // thus free the latch) after reacquiring the mutex, which
        // happens-after this guard's unlock — so every touch of `this`
        // below lands before the pointee can be freed.
        // SAFETY: `this` is live until the waiter observes the flag, which
        // the mutex defers past this function's final unlock.
        unsafe {
            let mut set = (*this).m.lock().unwrap_or_else(PoisonError::into_inner);
            *set = true;
            (*this).cv.notify_all();
        }
    }
}
