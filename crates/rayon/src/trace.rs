//! Scheduler tracing: per-worker event rings and counter cells, snapshot
//! as [`SchedulerStats`].
//!
//! PR 6 made the scheduler real (persistent workers, Chase–Lev deques,
//! park/unpark); this module makes it *observable*. Until now a flat
//! scaling curve could not be diagnosed: was the pool stealing? parking?
//! degrading joins to inline execution? Nothing recorded any of it.
//!
//! # Design: single-writer cells, no locks on the hot path
//!
//! Each worker owns one `WorkerTrace`: a block of `AtomicU64` counters
//! plus a fixed-capacity event ring. Every field has exactly one writer —
//! the owning worker — so increments compile to a relaxed load + relaxed
//! store (plain add on x86/ARM, no `lock` prefix, no contention), and the
//! hot `join` path (push/pop) pays two such increments on top of the
//! fences it already executes. Readers (the registry's
//! `scheduler_stats` snapshot path) use relaxed loads from any
//! thread; counters are monotone, so a racy read is merely slightly stale,
//! never torn and never unsound.
//!
//! The event ring records the *cold* transitions — parks (with duration),
//! steal successes (with victim), overflow-inline degrades — as packed
//! two-word entries in a power-of-two ring of atomics. The writer bumps a
//! monotone cursor with a Release store after filling the slot; a drain
//! reads the cursor with Acquire and walks backwards. Ring capture is
//! gated by a process-wide flag ([`set_events_enabled`], or the
//! `RAYON_TRACE` environment variable read once) so the default-off cost
//! is one relaxed bool load per cold event. When the ring wraps, the
//! oldest events are overwritten and the loss is visible as
//! `events_total - events.len()`.
//!
//! # Drain protocol
//!
//! The intended reader is a *quiesced* pool: the driver snapshots after
//! its parallel phase joins, so every worker's writes to its own cells
//! happen-before the join's latch synchronization and the snapshot sees a
//! consistent picture. Snapshotting a *busy* pool is still memory-safe
//! (everything is an atomic) — the numbers are just mid-flight.
//!
//! Counters are cumulative over the registry's lifetime; per-run figures
//! come from [`SchedulerStats::delta`] over a before/after snapshot pair.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Events each worker's ring can hold before the oldest are overwritten.
/// 1024 two-word entries = 16 KiB per worker — parks and steals arrive at
/// park-timeout granularity (hundreds of µs), so this covers minutes of
/// the busiest realistic schedule.
pub const RING_CAPACITY: usize = 1024;

/// Process-wide gate for event-ring capture (counters are always on).
static EVENTS_ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn events_flag() -> &'static AtomicBool {
    EVENTS_ENABLED.get_or_init(|| {
        AtomicBool::new(matches!(
            std::env::var("RAYON_TRACE").as_deref(),
            Ok(v) if !v.is_empty() && v != "0"
        ))
    })
}

/// Whether event-ring capture is currently on (see [`set_events_enabled`]).
#[inline]
pub fn events_enabled() -> bool {
    // ORDERING: Relaxed on/off flag; capture may straddle a toggle by a
    // few events, which is acceptable for tracing.
    // publishes-via: none needed — advisory toggle only
    events_flag().load(Ordering::Relaxed)
}

/// Turn event-ring capture on or off process-wide. Counters are unaffected
/// (always collected). Defaults to the `RAYON_TRACE` environment variable
/// (`RAYON_TRACE=1`), read once at first use.
pub fn set_events_enabled(enabled: bool) {
    // ORDERING: Relaxed toggle store, same regime as `events_enabled`.
    // publishes-via: none needed — advisory toggle only
    events_flag().store(enabled, Ordering::Relaxed);
}

/// Microseconds since the process-wide trace epoch (the first call to this
/// function). One monotonic base for every timestamp the workspace emits —
/// scheduler events here, phase spans in `semisort::obs` — so lines from
/// different sources order into a single timeline.
pub fn epoch_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// What a ring event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The worker parked (condvar wait); `dur_us` is the time asleep.
    Park,
    /// The worker stole a job; `arg` is the victim's worker index.
    StealSuccess,
    /// A `join` push found the deque full and ran its task inline.
    InlineDegrade,
}

impl TraceEventKind {
    fn code(self) -> u64 {
        match self {
            TraceEventKind::Park => 1,
            TraceEventKind::StealSuccess => 2,
            TraceEventKind::InlineDegrade => 3,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(TraceEventKind::Park),
            2 => Some(TraceEventKind::StealSuccess),
            3 => Some(TraceEventKind::InlineDegrade),
            _ => None,
        }
    }

    /// Stable lowercase spelling (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Park => "park",
            TraceEventKind::StealSuccess => "steal",
            TraceEventKind::InlineDegrade => "inline-degrade",
        }
    }
}

/// One drained ring event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Worker that recorded it (rings are single-writer).
    pub worker: usize,
    /// Start time, µs since [`epoch_micros`]'s epoch.
    pub start_us: u64,
    /// Duration in µs (0 for instantaneous events).
    pub dur_us: u64,
    /// Kind-specific argument (steal: victim index; otherwise 0).
    pub arg: u64,
}

// Packing: word0 = kind(8 bits) | arg(16 bits) | start_us(40 bits),
// word1 = dur_us. 40 bits of µs ≈ 12.7 days of process uptime; the ring
// is diagnostics, not accounting, so saturation is acceptable.
const START_BITS: u64 = 40;
const ARG_BITS: u64 = 16;

fn pack(kind: TraceEventKind, arg: u64, start_us: u64) -> u64 {
    (kind.code() << (START_BITS + ARG_BITS))
        | (arg.min((1 << ARG_BITS) - 1) << START_BITS)
        | start_us.min((1 << START_BITS) - 1)
}

fn unpack(word0: u64, word1: u64, worker: usize) -> Option<TraceEvent> {
    let kind = TraceEventKind::from_code(word0 >> (START_BITS + ARG_BITS))?;
    Some(TraceEvent {
        kind,
        worker,
        start_us: word0 & ((1 << START_BITS) - 1),
        dur_us: word1,
        arg: (word0 >> START_BITS) & ((1 << ARG_BITS) - 1),
    })
}

/// A single-writer counter: relaxed load + relaxed store instead of a
/// `fetch_add`, sound because exactly one thread (the owning worker) ever
/// writes it. Readers see a monotone, possibly slightly stale value.
#[derive(Default)]
struct OwnerCounter(AtomicU64);

impl OwnerCounter {
    #[inline(always)]
    fn add(&self, delta: u64) {
        // ORDERING: Relaxed single-writer read of our own counter — no
        // RMW needed, two relaxed accesses cannot lose updates.
        // publishes-via: pool quiescence (drain protocol)
        let v = self.0.load(Ordering::Relaxed);
        // ORDERING: Relaxed single-writer store; readers tolerate
        // staleness and get exact totals only at quiescence.
        // publishes-via: pool quiescence (drain protocol)
        self.0.store(v + delta, Ordering::Relaxed);
    }

    #[inline(always)]
    fn inc(&self) {
        self.add(1);
    }

    fn get(&self) -> u64 {
        // ORDERING: Relaxed monotone read, possibly slightly stale.
        // publishes-via: pool quiescence (drain protocol)
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-worker trace state: counters plus the event ring. Owned by the
/// registry (one per deque), written only by the owning worker.
pub(crate) struct WorkerTrace {
    // Deque traffic.
    pushes: OwnerCounter,
    pops: OwnerCounter,
    inline_degrades: OwnerCounter,
    // Steal traffic (this worker acting as the thief).
    steal_attempts: OwnerCounter,
    steal_retries: OwnerCounter,
    steals_from: Vec<OwnerCounter>,
    // Idle protocol.
    parks: OwnerCounter,
    park_time_us: OwnerCounter,
    // Work intake.
    injector_pops: OwnerCounter,
    jobs_executed: OwnerCounter,
    // Event ring: RING_CAPACITY two-word slots + a monotone cursor.
    ring: Box<[AtomicU64]>,
    cursor: AtomicU64,
}

impl WorkerTrace {
    pub(crate) fn new(num_threads: usize) -> Self {
        WorkerTrace {
            pushes: OwnerCounter::default(),
            pops: OwnerCounter::default(),
            inline_degrades: OwnerCounter::default(),
            steal_attempts: OwnerCounter::default(),
            steal_retries: OwnerCounter::default(),
            steals_from: (0..num_threads).map(|_| OwnerCounter::default()).collect(),
            parks: OwnerCounter::default(),
            park_time_us: OwnerCounter::default(),
            injector_pops: OwnerCounter::default(),
            jobs_executed: OwnerCounter::default(),
            ring: (0..RING_CAPACITY * 2)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            cursor: AtomicU64::new(0),
        }
    }

    #[inline(always)]
    pub(crate) fn on_push(&self) {
        self.pushes.inc();
    }

    #[inline(always)]
    pub(crate) fn on_pop(&self) {
        self.pops.inc();
    }

    pub(crate) fn on_inline_degrade(&self, worker: usize) {
        self.inline_degrades.inc();
        self.record(TraceEventKind::InlineDegrade, worker as u64, 0);
    }

    #[inline(always)]
    pub(crate) fn on_steal_attempt(&self) {
        self.steal_attempts.inc();
    }

    #[inline(always)]
    pub(crate) fn on_steal_retry(&self) {
        self.steal_retries.inc();
    }

    pub(crate) fn on_steal_success(&self, victim: usize) {
        if let Some(c) = self.steals_from.get(victim) {
            c.inc();
        }
        self.record(TraceEventKind::StealSuccess, victim as u64, 0);
    }

    pub(crate) fn on_park(&self, start_us: u64, dur_us: u64) {
        self.parks.inc();
        self.park_time_us.add(dur_us);
        self.record_at(TraceEventKind::Park, 0, start_us, dur_us);
    }

    #[inline(always)]
    pub(crate) fn on_injector_pop(&self) {
        self.injector_pops.inc();
    }

    #[inline(always)]
    pub(crate) fn on_job_executed(&self) {
        self.jobs_executed.inc();
    }

    fn record(&self, kind: TraceEventKind, arg: u64, dur_us: u64) {
        if events_enabled() {
            self.record_at(kind, arg, epoch_micros(), dur_us);
        }
    }

    fn record_at(&self, kind: TraceEventKind, arg: u64, start_us: u64, dur_us: u64) {
        if !events_enabled() {
            return;
        }
        // ORDERING: Relaxed read of our own cursor (single writer).
        // publishes-via: the Release cursor store below
        let i = self.cursor.load(Ordering::Relaxed);
        let slot = ((i as usize) % RING_CAPACITY) * 2;
        // ORDERING: Relaxed slot stores, published as a pair by the
        // Release cursor store below.
        // publishes-via: the Release cursor store below
        self.ring[slot].store(pack(kind, arg, start_us), Ordering::Relaxed);
        // ORDERING: as above. publishes-via: the Release cursor store below
        self.ring[slot + 1].store(dur_us, Ordering::Relaxed);
        // ORDERING: Release — a drain that Acquire-loads the new cursor
        // sees the slot words stored above.
        self.cursor.store(i + 1, Ordering::Release);
    }

    pub(crate) fn snapshot(&self, index: usize) -> WorkerStats {
        // ORDERING: Acquire pairs with `record_at`'s Release cursor store
        // so every slot at index < total is visible.
        let total = self.cursor.load(Ordering::Acquire);
        let kept = total.min(RING_CAPACITY as u64);
        let mut events = Vec::with_capacity(kept as usize);
        for seq in (total - kept)..total {
            let slot = ((seq as usize) % RING_CAPACITY) * 2;
            // ORDERING: Relaxed slot reads, ordered by the Acquire cursor
            // load above; a concurrent wrap can tear a pair, and `unpack`
            // drops the garbage event.
            // publishes-via: the Acquire cursor load above
            let w0 = self.ring[slot].load(Ordering::Relaxed);
            // ORDERING: as above. publishes-via: the Acquire cursor load
            let w1 = self.ring[slot + 1].load(Ordering::Relaxed);
            if let Some(ev) = unpack(w0, w1, index) {
                events.push(ev);
            }
        }
        WorkerStats {
            pushes: self.pushes.get(),
            pops: self.pops.get(),
            inline_degrades: self.inline_degrades.get(),
            steal_attempts: self.steal_attempts.get(),
            steal_retries: self.steal_retries.get(),
            steals_from: self.steals_from.iter().map(OwnerCounter::get).collect(),
            parks: self.parks.get(),
            park_time_us: self.park_time_us.get(),
            injector_pops: self.injector_pops.get(),
            jobs_executed: self.jobs_executed.get(),
            events_total: total,
            events,
        }
    }
}

/// One worker's slice of a [`SchedulerStats`] snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs pushed onto this worker's own deque (`join` lazy splits).
    pub pushes: u64,
    /// Jobs popped back unstolen (the uncontended `join` fast path).
    pub pops: u64,
    /// `join` pushes that found the deque full and ran inline instead.
    pub inline_degrades: u64,
    /// Individual victim probes this worker made while hunting.
    pub steal_attempts: u64,
    /// Probes that lost a CAS race (victim non-empty but contended).
    pub steal_retries: u64,
    /// Successful steals by victim index (`steals_from[v]` = jobs this
    /// worker took from worker `v`). Sums to this worker's success count.
    pub steals_from: Vec<u64>,
    /// Times this worker parked on the idle condvar.
    pub parks: u64,
    /// Total µs spent parked.
    pub park_time_us: u64,
    /// Jobs this worker pulled from the global injector.
    pub injector_pops: u64,
    /// Jobs this worker executed (own pops excluded — those run inside
    /// `join` frames; this counts hunted work: steals + injector + deque
    /// drains in the main loop).
    pub jobs_executed: u64,
    /// Ring events ever written (monotone; `events_total -
    /// events.len()` of them have been overwritten when it exceeds
    /// [`RING_CAPACITY`]).
    pub events_total: u64,
    /// Drained ring events, oldest first (empty unless capture was on).
    pub events: Vec<TraceEvent>,
}

impl WorkerStats {
    /// Successful steals by this worker (sum over victims).
    pub fn steal_successes(&self) -> u64 {
        self.steals_from.iter().sum()
    }

    fn delta(&self, before: &WorkerStats) -> WorkerStats {
        let cut = before.events_total;
        WorkerStats {
            pushes: self.pushes.saturating_sub(before.pushes),
            pops: self.pops.saturating_sub(before.pops),
            inline_degrades: self.inline_degrades.saturating_sub(before.inline_degrades),
            steal_attempts: self.steal_attempts.saturating_sub(before.steal_attempts),
            steal_retries: self.steal_retries.saturating_sub(before.steal_retries),
            steals_from: self
                .steals_from
                .iter()
                .zip(before.steals_from.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            parks: self.parks.saturating_sub(before.parks),
            park_time_us: self.park_time_us.saturating_sub(before.park_time_us),
            injector_pops: self.injector_pops.saturating_sub(before.injector_pops),
            jobs_executed: self.jobs_executed.saturating_sub(before.jobs_executed),
            events_total: self.events_total.saturating_sub(before.events_total),
            // Keep only events written after the `before` snapshot. The
            // ring may have wrapped past `cut`; what survives is the tail.
            events: {
                let new = self.events_total.saturating_sub(cut) as usize;
                let skip = self.events.len().saturating_sub(new);
                self.events[skip..].to_vec()
            },
        }
    }
}

/// A snapshot of one registry's scheduler activity. Cumulative since the
/// registry was created; see [`SchedulerStats::delta`] for per-run figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Worker count of the registry this was snapshot from.
    pub num_threads: usize,
    /// Jobs submitted through the global injector (external `join`s,
    /// `install` calls).
    pub injector_submissions: u64,
    /// Per-worker breakdown, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Sum of successful steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(WorkerStats::steal_successes).sum()
    }

    /// Sum of victim probes across workers.
    pub fn total_steal_attempts(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_attempts).sum()
    }

    /// Sum of parks across workers.
    pub fn total_parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }

    /// Sum of µs spent parked across workers.
    pub fn total_park_time_us(&self) -> u64 {
        self.workers.iter().map(|w| w.park_time_us).sum()
    }

    /// Sum of overflow-inline degrades across workers.
    pub fn total_inline_degrades(&self) -> u64 {
        self.workers.iter().map(|w| w.inline_degrades).sum()
    }

    /// Sum of deque pushes across workers.
    pub fn total_pushes(&self) -> u64 {
        self.workers.iter().map(|w| w.pushes).sum()
    }

    /// Sum of own-deque pops across workers.
    pub fn total_pops(&self) -> u64 {
        self.workers.iter().map(|w| w.pops).sum()
    }

    /// All drained ring events across workers, in worker order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.workers.iter().flat_map(|w| w.events.iter())
    }

    /// The activity between snapshot `before` and `self` (fieldwise
    /// saturating subtraction; ring events reduce to those written after
    /// `before`). Snapshots from registries of different sizes (e.g. a
    /// fresh pool) diff as `self` unchanged for the extra workers.
    pub fn delta(&self, before: &SchedulerStats) -> SchedulerStats {
        let empty = WorkerStats::default();
        SchedulerStats {
            num_threads: self.num_threads,
            injector_submissions: self
                .injector_submissions
                .saturating_sub(before.injector_submissions),
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| w.delta(before.workers.get(i).unwrap_or(&empty)))
                .collect(),
        }
    }
}

/// Registry-level shared trace state (multi-writer, cold paths only).
#[derive(Default)]
pub(crate) struct RegistryTrace {
    pub(crate) injector_submissions: AtomicU64,
}

impl RegistryTrace {
    pub(crate) fn on_inject(&self) {
        // ORDERING: Relaxed multi-writer tally (any external thread may
        // inject); exact totals only read at quiescence.
        // publishes-via: pool quiescence (drain protocol)
        self.injector_submissions.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The events flag is process-global; tests that flip it must not
    /// overlap. (Poisoning is fine to ignore — the flag is reset below.)
    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn pack_unpack_round_trips() {
        for (kind, arg, start, dur) in [
            (TraceEventKind::Park, 0u64, 0u64, 412u64),
            (TraceEventKind::StealSuccess, 7, 123_456, 0),
            (TraceEventKind::InlineDegrade, 3, (1 << 40) - 1, u64::MAX),
        ] {
            let ev = unpack(pack(kind, arg, start), dur, 5).expect("valid event");
            assert_eq!(ev.kind, kind);
            assert_eq!(ev.arg, arg);
            assert_eq!(ev.start_us, start);
            assert_eq!(ev.dur_us, dur);
            assert_eq!(ev.worker, 5);
        }
        assert!(unpack(0, 0, 0).is_none(), "zeroed slot is not an event");
    }

    #[test]
    fn pack_saturates_oversized_fields() {
        let ev = unpack(pack(TraceEventKind::Park, u64::MAX, u64::MAX), 1, 0).unwrap();
        assert_eq!(ev.arg, (1 << ARG_BITS) - 1);
        assert_eq!(ev.start_us, (1 << START_BITS) - 1);
    }

    #[test]
    fn ring_keeps_last_capacity_events() {
        let _g = FLAG_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_events_enabled(true);
        let t = WorkerTrace::new(2);
        let total = RING_CAPACITY as u64 + 10;
        for i in 0..total {
            t.record_at(TraceEventKind::Park, 0, i, 1);
        }
        let snap = t.snapshot(0);
        assert_eq!(snap.events_total, total);
        assert_eq!(snap.events.len(), RING_CAPACITY);
        assert_eq!(snap.events.first().unwrap().start_us, 10);
        assert_eq!(snap.events.last().unwrap().start_us, total - 1);
        set_events_enabled(false);
    }

    #[test]
    fn delta_subtracts_and_trims_events() {
        let _g = FLAG_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_events_enabled(true);
        let t = WorkerTrace::new(2);
        t.on_push();
        t.on_push();
        t.on_park(10, 5);
        let before = SchedulerStats {
            num_threads: 2,
            injector_submissions: 0,
            workers: vec![t.snapshot(0), WorkerStats::default()],
        };
        t.on_push();
        t.on_steal_success(1);
        t.on_park(20, 7);
        let after = SchedulerStats {
            num_threads: 2,
            injector_submissions: 3,
            workers: vec![t.snapshot(0), WorkerStats::default()],
        };
        let d = after.delta(&before);
        assert_eq!(d.workers[0].pushes, 1);
        assert_eq!(d.workers[0].parks, 1);
        assert_eq!(d.workers[0].park_time_us, 7);
        assert_eq!(d.workers[0].steals_from, vec![0, 1]);
        assert_eq!(d.total_steals(), 1);
        assert_eq!(d.injector_submissions, 3);
        // Only the two post-`before` events survive the delta.
        assert_eq!(d.workers[0].events.len(), 2);
        assert_eq!(d.workers[0].events[0].kind, TraceEventKind::StealSuccess);
        assert_eq!(d.workers[0].events[1].kind, TraceEventKind::Park);
        set_events_enabled(false);
    }

    #[test]
    fn counters_do_not_need_events_enabled() {
        let _g = FLAG_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_events_enabled(false);
        let t = WorkerTrace::new(3);
        t.on_steal_attempt();
        t.on_steal_retry();
        t.on_steal_success(2);
        t.on_pop();
        t.on_injector_pop();
        t.on_job_executed();
        t.on_inline_degrade(0);
        let s = t.snapshot(0);
        assert_eq!(s.steal_attempts, 1);
        assert_eq!(s.steal_retries, 1);
        assert_eq!(s.steal_successes(), 1);
        assert_eq!(s.steals_from, vec![0, 0, 1]);
        assert_eq!(s.pops, 1);
        assert_eq!(s.injector_pops, 1);
        assert_eq!(s.jobs_executed, 1);
        assert_eq!(s.inline_degrades, 1);
        assert!(s.events.is_empty(), "ring gated off");
    }

    #[test]
    fn epoch_is_monotone() {
        let a = epoch_micros();
        let b = epoch_micros();
        assert!(b >= a);
    }
}
