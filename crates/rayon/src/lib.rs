//! A work-stealing stand-in for the `rayon` crate.
//!
//! The build sandbox for this workspace has no access to crates.io, so the
//! real `rayon` cannot be vendored. This crate re-implements the *exact* API
//! subset the workspace uses — parallel iterators over slices/vecs/ranges,
//! `join`, `par_sort_unstable_by_key`, and thread pools — on a real
//! work-stealing scheduler:
//!
//! - a persistent registry (`registry` module) of worker threads, each
//!   owning a Chase–Lev deque (`deque` module: owner pushes/pops LIFO at
//!   the bottom, thieves CAS-steal FIFO from the top);
//! - **lazy task splitting** in [`join`]: the caller pushes `b` as a
//!   stealable job (`job` module), runs `a` inline, then pops — if nobody
//!   stole `b` it runs inline too, so an uncontended `join` costs one deque
//!   push/pop rather than a thread spawn;
//! - a park/unpark idle protocol plus a global injector queue for work
//!   submitted from outside the pool;
//! - panic propagation across steals (a panicking stolen task is caught,
//!   shipped back through its job slot, and re-raised in the `join` caller,
//!   `a`'s panic winning over `b`'s as in rayon).
//!
//! Semantics match rayon where the workspace depends on them: `join(a, b)`
//! may run both closures concurrently and propagates panics; parallel
//! iterators visit every element exactly once with `with_min_len` bounding
//! split granularity; `ThreadPoolBuilder::new().num_threads(n).build()?
//! .install(f)` runs `f` with `current_num_threads() == n` observed by
//! nested parallel calls. The deque is fixed-capacity: a `join` nest deeper
//! than the ring degrades to inline sequential execution instead of
//! reallocating, which bounds memory and preserves the workspace's
//! schedule-independence guarantees.
//!
//! Under Miri (`cfg(miri)`) no worker threads are ever spawned: `join` runs
//! `a` then `b` on the calling thread and pools install by setting a
//! thread-local size. Miri *can* execute real threads, but its scheduler
//! makes runs slow and interleaving-dependent; the workspace's algorithms
//! are all schedule-independent, so the sequential collapse checks the same
//! memory-model obligations (initialization, aliasing, leaks)
//! deterministically. `current_num_threads()` still reports the installed
//! pool size, so chunk-size arithmetic matches a parallel run's.
//!
//! The global (no-pool) registry's size can be pinned with the
//! `RAYON_NUM_THREADS` environment variable, read once at first use —
//! mirroring real rayon, and what CI's 4-thread matrix leg uses.

#![warn(missing_docs)]

mod deque;
mod job;
pub(crate) mod registry;

pub mod iter;
pub mod prelude;
pub mod slice;
pub mod trace;

use std::cell::Cell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use job::{JobResult, SpinLatch, StackJob};
use registry::{Registry, WorkerThread};

thread_local! {
    /// Size of the innermost *inline-installed* pool (0 = none). Only the
    /// inline install path (Miri, or a 1-thread pool) uses this; a real
    /// pool's size travels with the worker identity instead.
    static INSTALLED: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Thread count the global registry uses (or would use): `RAYON_NUM_THREADS`
/// if set to a positive integer, else the hardware parallelism.
fn global_thread_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(hardware_threads)
}

/// The lazily-created registry used by parallel calls made outside any
/// explicit [`ThreadPool`]. Never terminated — its workers park when idle.
fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(global_thread_count()))
}

/// Number of threads in the current pool: the pool whose worker is running
/// the calling thread, the inline-installed pool size, or the global
/// registry's (configured) size when neither applies.
pub fn current_num_threads() -> usize {
    if !cfg!(miri) {
        if let Some(worker) = WorkerThread::current() {
            return worker.registry.num_threads();
        }
    }
    let installed = INSTALLED.with(Cell::get);
    if installed != 0 {
        installed
    } else {
        // Report the configured size without forcing the registry (and its
        // threads) into existence just to answer a query.
        global_thread_count()
    }
}

/// The calling thread's worker index within its pool, or `None` when the
/// caller is not a pool worker (external threads, inline installs, Miri).
pub fn current_worker_index() -> Option<usize> {
    if cfg!(miri) {
        return None;
    }
    WorkerThread::current().map(WorkerThread::index)
}

/// Snapshot the scheduler activity of the current pool: the pool whose
/// worker is running the calling thread, else the global registry. Returns
/// `None` when no pool with real workers applies (Miri, inline installs
/// with the global registry never started).
///
/// Numbers are cumulative since the registry started; diff two snapshots
/// with [`trace::SchedulerStats::delta`] for per-run figures. Consistent
/// when the pool is quiescent (e.g. after the `join`s of interest
/// completed); always memory-safe.
pub fn scheduler_stats() -> Option<trace::SchedulerStats> {
    if cfg!(miri) {
        return None;
    }
    if let Some(worker) = WorkerThread::current() {
        return Some(worker.registry.scheduler_stats());
    }
    // Outside any pool: report on the global registry, creating it — an
    // observer asking for scheduler stats is about to run work on it.
    Some(global_registry().scheduler_stats())
}

/// Run two closures, potentially in parallel, and return both results.
/// Panics in either closure propagate to the caller (first `a`'s, then
/// `b`'s, matching the order rayon documents).
///
/// On a pool worker this is the lazy-splitting hot path: push `b`, run `a`,
/// pop — stolen `b` is awaited by *stealing other work in the meantime*
/// (see `WorkerThread::wait_until`), unstolen `b` runs inline. Outside the
/// pool, the whole `join` is injected into the global registry (or runs
/// inline when the effective pool size is 1).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if cfg!(miri) || current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    match WorkerThread::current() {
        Some(worker) => join_worker(worker, a, b),
        None => global_registry().in_worker(move || join(a, b)),
    }
}

/// The worker-thread body of [`join`]: lazy task splitting over the
/// calling worker's own deque.
fn join_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, SpinLatch::new(&worker.registry));
    // SAFETY: this frame does not return until `job_b` is resolved (run
    // inline after an unstolen pop, or its latch observed set), so the job
    // outlives any executor; the deque hands its ref to exactly one taker.
    let job_ref = unsafe { job_b.as_job_ref() };
    if let Err(_returned) = worker.push(job_ref) {
        // Deque full (join nest deeper than the ring): degrade to inline
        // sequential execution, the bounded-memory escape hatch.
        worker.trace().on_inline_degrade(worker.index());
        // SAFETY: the ref never entered the deque; nobody else can run it.
        let b = unsafe { job_b.take_func() };
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    // Run `a` with the panic contained: stolen-`b` still references this
    // frame, so we must not unwind past it before `b` is resolved.
    let status_a = panic::catch_unwind(AssertUnwindSafe(a));
    let result_b: JobResult<RB> = loop {
        match worker.pop() {
            Some(job) if job == job_ref => {
                // Unstolen: reclaim and run inline.
                // SAFETY: the pop removed the ref from the deque before any
                // thief claimed it, so we are the sole executor.
                let b = unsafe { job_b.take_func() };
                break match panic::catch_unwind(AssertUnwindSafe(b)) {
                    Ok(v) => JobResult::Ok(v),
                    Err(p) => JobResult::Panic(p),
                };
            }
            Some(job) => {
                // Strict join nesting means everything pushed above our job
                // was popped before `a` returned; defensively execute any
                // straggler rather than lose it.
                // SAFETY: popped refs are ours to execute exactly once.
                unsafe { job.execute() };
            }
            None => {
                // Stolen: wait for the thief, stealing other work meanwhile.
                worker.wait_until(&job_b.latch);
                // SAFETY: the latch's Acquire probe ordered the thief's
                // result store before this read.
                break unsafe { job_b.take_result() };
            }
        }
    };
    match status_a {
        Ok(ra) => (ra, result_b.unwrap_or_propagate()),
        Err(p) => {
            // `b` is fully resolved (result or panic payload dropped here),
            // so unwinding past this frame is now safe; `a`'s panic wins.
            panic::resume_unwind(p);
        }
    }
}

/// Raw pointer to a block-result slot array; Send so forked `join` arms can
/// write their (disjoint) slots.
struct ResultsPtr<R>(*mut Option<R>);
impl<R> Clone for ResultsPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for ResultsPtr<R> {}
// SAFETY: the recursive splitter gives each leaf call a distinct block
// index, so writes land in disjoint slots; results are read only after the
// root `join` tree completes, which happens-after every leaf write.
unsafe impl<R: Send> Send for ResultsPtr<R> {}

/// Evaluate blocks `range` (of `blocks` total over `0..len`) by binary
/// `join` splitting — the recursion is what makes block evaluation
/// stealable at every granularity.
fn eval_blocks<R, F>(range: Range<usize>, blocks: usize, len: usize, eval: &F, out: ResultsPtr<R>)
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if range.len() == 1 {
        let b = range.start;
        let lo = b * len / blocks;
        let hi = (b + 1) * len / blocks;
        let r = eval(lo..hi);
        // SAFETY: slot `b` is this leaf's exclusively (disjoint recursion).
        unsafe { *out.0.add(b) = Some(r) };
        return;
    }
    let mid = range.start + range.len() / 2;
    let (lo_half, hi_half) = (range.start..mid, mid..range.end);
    join(
        move || eval_blocks(lo_half, blocks, len, eval, out),
        move || eval_blocks(hi_half, blocks, len, eval, out),
    );
}

/// Partition `0..len` into blocks of at least `min_len` indices, evaluate
/// `eval` on every block (possibly concurrently), and return the per-block
/// results in index order. The building block for every parallel-iterator
/// consumer.
pub(crate) fn run_blocks<R, F>(len: usize, min_len: usize, eval: &F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let workers = current_num_threads();
    let max_blocks = (len / min_len).max(1);
    // Over-split a little so an unlucky slow block does not leave the other
    // workers idle for its whole duration; stealing balances the rest.
    let blocks = if cfg!(miri) || workers <= 1 {
        1
    } else {
        (workers * 4).min(max_blocks)
    };
    if blocks <= 1 {
        return vec![eval(0..len)];
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(blocks);
    results.resize_with(blocks, || None);
    let out = ResultsPtr(results.as_mut_ptr());
    eval_blocks(0..blocks, blocks, len, eval, out);
    results
        .into_iter()
        .map(|r| r.expect("every block slot is written before the join tree completes"))
        .collect()
}

/// Error from [`ThreadPoolBuilder::build`]. This shim cannot actually fail
/// to build a pool; the type exists so `.expect(..)` call sites compile.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a specific thread count; 0 means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool, spawning its worker threads (except under Miri or
    /// for 1-thread pools, which install inline). Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        let registry = if cfg!(miri) || n == 1 {
            None
        } else {
            Some(Registry::new(n))
        };
        Ok(ThreadPool {
            num_threads: n,
            registry,
        })
    }
}

/// A thread pool: `n` persistent worker threads with work-stealing deques.
/// Dropping the pool terminates and joins its workers (pending work is
/// drained first).
pub struct ThreadPool {
    num_threads: usize,
    /// `None` for the inline flavors (Miri / 1 thread), which have no
    /// worker threads at all.
    registry: Option<Arc<Registry>>,
}

/// Restores the inline-install thread-local on drop, so a panicking
/// `install` cannot leak the pool size into subsequent code on this thread.
struct InstallGuard {
    saved: usize,
}

impl InstallGuard {
    fn set(n: usize) -> Self {
        InstallGuard {
            saved: INSTALLED.with(|c| c.replace(n)),
        }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|c| c.set(self.saved));
    }
}

impl ThreadPool {
    /// Run `f` on this pool: `current_num_threads()` reports the pool's
    /// size inside `f`, and parallel operations fan out over the pool's
    /// workers. Blocks until `f` completes; panics in `f` propagate.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        match &self.registry {
            Some(registry) => registry.in_worker(f),
            None => {
                let _guard = InstallGuard::set(self.num_threads);
                f()
            }
        }
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Snapshot this pool's scheduler activity (`None` for the inline
    /// flavors, which have no workers to trace). See [`scheduler_stats`].
    pub fn scheduler_stats(&self) -> Option<trace::SchedulerStats> {
        self.registry.as_ref().map(|r| r.scheduler_stats())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(registry) = &self.registry {
            registry.terminate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn install_sets_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn install_on_one_thread_pool_is_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let (inside, n) = pool.install(|| (std::thread::current().id(), current_num_threads()));
        assert_eq!(inside, caller);
        assert_eq!(n, 1);
    }

    #[test]
    fn install_restores_thread_count_on_panic() {
        // Regression: the inline install path used to restore its
        // thread-local with straight-line code after `f()`, so a panicking
        // `f` left the pool size installed forever on this thread. The
        // drop guard must restore it during unwinding.
        let baseline = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| -> () { panic!("install bomb") })
        }));
        assert!(result.is_err());
        assert_eq!(current_num_threads(), baseline);
    }

    #[test]
    fn nested_join_does_not_explode() {
        // A full binary recursion 16 levels deep = 65k leaf tasks; lazy
        // splitting must keep this to deque traffic, not thread spawns
        // (the old shim would OOM without its spawn budget here).
        fn rec(d: u32) -> u64 {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| rec(d - 1), || rec(d - 1));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| rec(16)), 1 << 16);
    }

    #[test]
    fn linear_join_nest_deeper_than_deque_degrades_gracefully() {
        // A *linear* nest (each join's `a` arm forks again before b runs)
        // keeps every frame's b-job live in the deque at once; past the
        // ring capacity, pushes fail and join must run inline instead of
        // aborting or reallocating.
        fn nest(d: u32) -> u64 {
            if d == 0 {
                return 0;
            }
            let (a, b) = join(|| nest(d - 1), || 1u64);
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let depth = crate::deque::CAPACITY as u32 + 512;
        assert_eq!(pool.install(|| nest(depth)), depth as u64);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            join(|| (), || panic!("boom"));
        });
    }

    #[test]
    fn join_prefers_a_panic_over_b_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| join(|| panic!("from-a"), || panic!("from-b")));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "from-a");
    }

    #[test]
    fn blocks_cover_all_indices_in_order() {
        let parts = run_blocks(1000, 1, &|r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_smoke_under_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<u64> = (0..10_000u64).collect();
        let s: u64 = pool.install(|| v.par_iter().map(|&x| x * 2).sum());
        assert_eq!(s, 10_000 * 9_999);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        // Dropping must terminate cleanly even with work recently run.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<u64> = (0..100_000u64).collect();
        let s: u64 = pool.install(|| v.par_iter().sum());
        assert_eq!(s, (0..100_000u64).sum());
        drop(pool);
    }

    #[test]
    fn top_level_join_outside_any_pool_works() {
        // Exercises the external-thread path: injection into the global
        // registry plus the LockLatch round trip.
        let (a, b) = join(|| (0..1000u64).sum::<u64>(), || vec![1u8; 64].len());
        assert_eq!(a, 499_500);
        assert_eq!(b, 64);
    }
}
