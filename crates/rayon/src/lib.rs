//! A registry-free stand-in for the `rayon` crate.
//!
//! The build sandbox for this workspace has no access to crates.io, so the
//! real `rayon` cannot be vendored. This crate re-implements the *exact* API
//! subset the workspace uses — parallel iterators over slices/vecs/ranges,
//! `join`, `par_sort_unstable_by_key`, and scoped thread pools — on top of
//! `std::thread::scope`. Semantics match rayon where the workspace depends
//! on them:
//!
//! - `join(a, b)` may run both closures concurrently and propagates panics.
//! - Parallel iterators partition the index space into blocks; every element
//!   is visited exactly once; `with_min_len` bounds the split granularity.
//! - `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)` runs `f`
//!   with `current_num_threads() == n`, observed by nested parallel calls.
//!
//! The one deliberate difference: there is no work-stealing deque. Instead a
//! thread-local *spawn budget* (initialized to the pool size) is split among
//! children at each fork point, so deeply nested `join` recursions (e.g.
//! parallel merge sort) degrade to sequential execution instead of spawning
//! one OS thread per task. This bounds live threads by the pool size while
//! keeping leaf work identical, which preserves the workspace's determinism
//! guarantees (all algorithms are written to be schedule-independent).

#![warn(missing_docs)]

pub mod iter;
pub mod prelude;
pub mod slice;

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Size of the innermost installed pool (0 = none; use hardware count).
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
    /// Remaining threads this task may fan out into (0 = unset; use pool).
    static BUDGET: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Number of threads in the current pool (the installed pool size, or the
/// hardware parallelism when no pool is installed).
pub fn current_num_threads() -> usize {
    let p = POOL_SIZE.with(|c| c.get());
    if p == 0 {
        hardware_threads()
    } else {
        p
    }
}

/// How many OS threads the current task may still fan out into.
///
/// Under Miri this is pinned to 1: every parallel operation collapses to
/// deterministic sequential execution on the calling thread (`run_blocks`
/// takes its single-worker path, `join` runs `a` then `b`). Miri *can*
/// execute real threads, but its scheduler makes runs slow and
/// interleaving-dependent; the workspace's algorithms are all
/// schedule-independent, so the sequential collapse checks the same memory
/// model obligations (initialization, aliasing, leaks) deterministically.
/// `current_num_threads()` still reports the installed pool size, so
/// chunk-size arithmetic matches a parallel run's.
pub(crate) fn spawn_budget() -> usize {
    if cfg!(miri) {
        return 1;
    }
    let b = BUDGET.with(|c| c.get());
    if b == 0 {
        current_num_threads()
    } else {
        b
    }
}

/// Raw pointer to a block-result slot array; Send so workers can write
/// their (disjoint) slots.
struct ResultsPtr<R>(*mut Option<R>);
impl<R> Clone for ResultsPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for ResultsPtr<R> {}
// SAFETY: each worker writes only slots it claimed via the shared atomic
// counter, so writes are disjoint; results are read only after the scope
// joins every worker.
unsafe impl<R: Send> Send for ResultsPtr<R> {}

fn drain<R, F>(next: &AtomicUsize, blocks: usize, len: usize, eval: &F, out: ResultsPtr<R>)
where
    F: Fn(Range<usize>) -> R + Sync,
{
    loop {
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= blocks {
            break;
        }
        let lo = b * len / blocks;
        let hi = (b + 1) * len / blocks;
        let r = eval(lo..hi);
        // SAFETY: slot `b` was claimed exclusively by the fetch_add above.
        unsafe { *out.0.add(b) = Some(r) };
    }
}

/// Partition `0..len` into blocks of at least `min_len` indices, evaluate
/// `eval` on every block (possibly concurrently), and return the per-block
/// results in index order. The building block for every consumer below.
pub(crate) fn run_blocks<R, F>(len: usize, min_len: usize, eval: &F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let min_len = min_len.max(1);
    let budget = spawn_budget();
    let max_blocks = (len / min_len).max(1);
    let workers = budget.min(max_blocks);
    if workers <= 1 {
        return vec![eval(0..len)];
    }
    // Over-split a little so an unlucky slow block does not leave the other
    // workers idle for its whole duration.
    let blocks = (workers * 4).min(max_blocks);
    let pool = current_num_threads();
    let child_budget = (budget / workers).max(1);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(blocks);
    results.resize_with(blocks, || None);
    let out = ResultsPtr(results.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 1..workers {
            let next = &next;
            let eval = &eval;
            s.spawn(move || {
                POOL_SIZE.with(|c| c.set(pool));
                BUDGET.with(|c| c.set(child_budget));
                drain(next, blocks, len, *eval, out);
            });
        }
        let saved = BUDGET.with(|c| c.replace(child_budget));
        drain(&next, blocks, len, eval, out);
        BUDGET.with(|c| c.set(saved));
    });
    results
        .into_iter()
        .map(|r| r.expect("every block is claimed before the scope joins"))
        .collect()
}

/// Run two closures, potentially in parallel, and return both results.
/// Panics in either closure propagate to the caller (first `a`'s, then
/// `b`'s, matching the order rayon documents).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = spawn_budget();
    if budget <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let pool = current_num_threads();
    let half = budget / 2;
    let mut ra = None;
    let mut rb = None;
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            POOL_SIZE.with(|c| c.set(pool));
            BUDGET.with(|c| c.set(half.max(1)));
            b()
        });
        let saved = BUDGET.with(|c| c.replace((budget - half).max(1)));
        let res_a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
        BUDGET.with(|c| c.set(saved));
        let res_b = handle.join();
        match res_a {
            Ok(v) => ra = Some(v),
            Err(p) => std::panic::resume_unwind(p),
        }
        match res_b {
            Ok(v) => rb = Some(v),
            Err(p) => std::panic::resume_unwind(p),
        }
    });
    (ra.unwrap(), rb.unwrap())
}

/// Error from [`ThreadPoolBuilder::build`]. This shim cannot actually fail
/// to build a pool; the type exists so `.expect(..)` call sites compile.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a specific thread count; 0 means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a thread-count scope, not a set of live threads.
/// Threads are created on demand by the parallel operations run inside
/// [`ThreadPool::install`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with `current_num_threads()` reporting this pool's size and
    /// parallel operations fanning out to at most that many threads.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let saved_pool = POOL_SIZE.with(|c| c.replace(self.num_threads));
        let saved_budget = BUDGET.with(|c| c.replace(self.num_threads));
        let out = f();
        POOL_SIZE.with(|c| c.set(saved_pool));
        BUDGET.with(|c| c.set(saved_budget));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn install_sets_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn nested_join_does_not_explode() {
        // A full binary recursion 16 levels deep = 65k leaf tasks; the spawn
        // budget must keep live threads bounded (this would OOM otherwise).
        fn rec(d: u32) -> u64 {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| rec(d - 1), || rec(d - 1));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| rec(16)), 1 << 16);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            join(|| (), || panic!("boom"));
        });
    }

    #[test]
    fn blocks_cover_all_indices_in_order() {
        let parts = run_blocks(1000, 1, &|r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_smoke_under_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let v: Vec<u64> = (0..10_000u64).collect();
        let s: u64 = pool.install(|| v.par_iter().map(|&x| x * 2).sum());
        assert_eq!(s, 10_000 * 9_999);
    }
}
