//! The worker registry: persistent threads, per-worker Chase–Lev deques, a
//! global injector for work arriving from outside the pool, and the
//! park/unpark protocol that lets idle workers sleep without missing work.
//!
//! # Shape
//!
//! A [`Registry`] owns `n` deques and spawns `n` OS threads at
//! construction; each thread runs [`main_loop`] until the registry is
//! terminated. A worker's schedule is:
//!
//! 1. pop its own deque (LIFO — depth-first on its own `join` spine,
//!    cache-warm);
//! 2. steal from the other workers' deques, starting at a per-worker
//!    rotating victim index (FIFO from the victim — thieves take the
//!    oldest, i.e. largest, pending task);
//! 3. drain the injector (work submitted by non-worker threads:
//!    `install`, or a top-level `join`/parallel-iterator call);
//! 4. park.
//!
//! # Park/unpark
//!
//! Parking uses one registry-wide mutex + condvar plus an atomic sleeper
//! count. A worker about to park increments the count, takes the lock,
//! **re-checks for visible work under the lock**, and only then waits (with
//! a timeout as a belt-and-braces net against the one unsynchronized
//! publish path, a deque push's Release store racing the sleeper-count
//! read). Publishers — push, inject, latch-set — call [`Registry::notify_all`],
//! which skips the lock entirely while no one sleeps, making wake-up cost
//! zero on the hot path.
//!
//! # Termination
//!
//! [`Registry::terminate`] sets a flag and wakes everyone; workers exit
//! once they find no work. The global registry (see [`crate::global_registry`])
//! is never terminated; per-[`ThreadPool`](crate::ThreadPool) registries
//! are terminated and joined when the pool drops.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::deque::{Deque, Steal};
use crate::job::{JobRef, LockLatch, SpinLatch, StackJob};
use crate::trace::{self, RegistryTrace, SchedulerStats, WorkerTrace};

/// How many consecutive empty work hunts a waiting worker spins through
/// (with `yield_now`) before parking on the condvar.
const SPINS_BEFORE_PARK: u32 = 32;

/// Park timeout: bounds the cost of the (rare) lost-wakeup race described
/// in the module docs.
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

/// Sleep-protocol state: see the module docs.
struct Sleep {
    lock: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
}

/// A persistent work-stealing thread pool.
pub(crate) struct Registry {
    deques: Vec<Deque>,
    /// Per-worker trace cells, parallel to `deques` (single-writer: only
    /// worker `i` writes `traces[i]`; see [`crate::trace`]).
    traces: Vec<WorkerTrace>,
    trace: RegistryTrace,
    injector: Mutex<VecDeque<JobRef>>,
    /// Lock-free emptiness probe for the injector (workers check it on
    /// every hunt; taking the mutex each time would serialize the pool).
    injector_len: AtomicUsize,
    sleep: Sleep,
    terminate: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Registry {
    /// Build a registry and spawn its `num_threads` workers.
    pub(crate) fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..num_threads).map(|_| Deque::new()).collect(),
            traces: (0..num_threads)
                .map(|_| WorkerTrace::new(num_threads))
                .collect(),
            trace: RegistryTrace::default(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: Sleep {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            terminate: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(num_threads);
        for index in 0..num_threads {
            let reg = registry.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rayon-shim-{index}"))
                // Deep join recursions (parallel merge sort, full-deque
                // inline degrade) live on worker stacks; the std 2 MiB
                // default is too tight for debug-build frames.
                .stack_size(8 * 1024 * 1024)
                .spawn(move || main_loop(reg, index))
                .expect("failed to spawn pool worker thread");
            handles.push(handle);
        }
        *registry
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = handles;
        registry
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Snapshot the cumulative scheduler activity of this registry. Safe
    /// to call from any thread at any time; numbers are consistent when
    /// the pool is quiescent (see [`crate::trace`] for the drain
    /// protocol).
    pub(crate) fn scheduler_stats(&self) -> SchedulerStats {
        SchedulerStats {
            num_threads: self.num_threads(),
            // ORDERING: Relaxed stats read; exact only at quiescence,
            // where the drain protocol orders it (see crate::trace).
            // publishes-via: pool quiescence (drain protocol)
            injector_submissions: self.trace.injector_submissions.load(Ordering::Relaxed),
            workers: self
                .traces
                .iter()
                .enumerate()
                .map(|(i, t)| t.snapshot(i))
                .collect(),
        }
    }

    /// Submit a job from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.trace.on_inject();
        {
            let mut q = self.injector.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(job);
            // ORDERING: SeqCst — one side of the Dekker handshake with
            // `park`: the length store must be totally ordered against the
            // sleeper-count RMWs so a parking worker cannot miss the job.
            self.injector_len.store(q.len(), Ordering::SeqCst);
        }
        self.notify_all();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        // ORDERING: SeqCst lock-free emptiness probe, in the same total
        // order as the stores under the injector lock.
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut q = self.injector.lock().unwrap_or_else(PoisonError::into_inner);
        let job = q.pop_front();
        // ORDERING: SeqCst, same regime as the store in `inject`.
        self.injector_len.store(q.len(), Ordering::SeqCst);
        job
    }

    /// Wake every parked worker (free when nobody is parked).
    pub(crate) fn notify_all(&self) {
        // ORDERING: SeqCst sleeper probe — pairs with the SeqCst
        // fetch_add in `park` so notify and park agree on their order
        // (missing a sleeper here could lose a wake-up forever).
        if self.sleep.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking (and immediately releasing) the lock serializes with a
            // parking worker's under-lock re-check, so the worker either
            // sees the new work or is already in `wait` when we notify.
            drop(
                self.sleep
                    .lock
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            self.sleep.cv.notify_all();
        }
    }

    /// Any work a parked worker could usefully wake for?
    fn has_visible_work(&self) -> bool {
        // ORDERING: SeqCst — the parking worker's under-lock re-check;
        // totally ordered against `inject`'s length store.
        self.injector_len.load(Ordering::SeqCst) > 0
            || self.deques.iter().any(Deque::looks_nonempty)
    }

    /// Park the calling worker (identified by `index`) until `wake` turns
    /// true, work appears, or the timeout elapses. `wake` is re-evaluated
    /// under the sleep lock before actually waiting, closing the
    /// publish/park race.
    fn park(&self, index: usize, wake: impl Fn() -> bool) {
        // ORDERING: SeqCst — the other side of the Dekker handshake with
        // `notify_all`'s sleeper probe; see there.
        self.sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self
            .sleep
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // ORDERING: Acquire terminate check pairs with the Release store
        // in `terminate`.
        if !wake() && !self.has_visible_work() && !self.terminate.load(Ordering::Acquire) {
            // Cold path by construction (the worker found no work for
            // SPINS_BEFORE_PARK hunts), so clock reads are affordable.
            let start_us = trace::epoch_micros();
            let _ = self
                .sleep
                .cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(PoisonError::into_inner);
            let dur_us = trace::epoch_micros().saturating_sub(start_us);
            self.traces[index].on_park(start_us, dur_us);
        }
        // ORDERING: SeqCst, symmetric with the fetch_add above.
        self.sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Run `f` inside the pool: directly if the calling thread is already
    /// one of this registry's workers, otherwise injected as a job while
    /// the caller blocks. Panics in `f` propagate to the caller.
    pub(crate) fn in_worker<R, F>(self: &Arc<Self>, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(worker) = WorkerThread::current() {
            if ptr::eq(Arc::as_ptr(&worker.registry), Arc::as_ptr(self)) {
                return f();
            }
        }
        let job = StackJob::new(f, LockLatch::new());
        // SAFETY: this frame blocks on the latch below, keeping the job
        // alive until its single execution completes.
        let job_ref = unsafe { job.as_job_ref() };
        self.inject(job_ref);
        job.latch.wait();
        // SAFETY: the latch wait synchronizes with the executor's result
        // store, and nobody else reads the result.
        unsafe { job.take_result() }.unwrap_or_propagate()
    }

    /// Ask the workers to exit and join their threads. Jobs still visible
    /// in the deques or injector are drained first (workers only exit on
    /// an empty hunt).
    pub(crate) fn terminate(&self) {
        // ORDERING: Release pairs with the Acquire loads in the worker
        // main loop and `park`.
        self.terminate.store(true, Ordering::Release);
        // Wake unconditionally: a worker may be between its last hunt and
        // the park, and the sleeper count alone cannot rule that out.
        drop(
            self.sleep
                .lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        self.sleep.cv.notify_all();
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Per-thread identity of a pool worker, stack-allocated in [`main_loop`]
/// and published through a thread-local pointer for the lifetime of the
/// thread.
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    index: usize,
    /// xorshift state for randomizing the first steal victim, so thieves
    /// do not convoy on worker 0.
    rng: Cell<u64>,
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

impl WorkerThread {
    /// The calling thread's worker identity, if it is a pool worker.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = WORKER.with(Cell::get);
        // SAFETY: the pointee lives on the worker thread's own `main_loop`
        // stack frame, which outlives every borrow handed out here: the
        // thread-local is cleared before that frame returns, and the
        // reference never leaves the thread it was created on.
        unsafe { ptr.as_ref() }
    }

    fn deque(&self) -> &Deque {
        &self.registry.deques[self.index]
    }

    /// This worker's trace cells (single-writer: only this thread).
    pub(crate) fn trace(&self) -> &WorkerTrace {
        &self.registry.traces[self.index]
    }

    /// This worker's index within its registry.
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Push a job onto this worker's own deque (wakes a thief if any are
    /// parked). `Err(job)` when the deque is full.
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        // SAFETY: `self` is the calling thread's own worker identity
        // (`WorkerThread::current`), so this thread owns the deque.
        unsafe { self.deque().push(job) }?;
        self.trace().on_push();
        self.registry.notify_all();
        Ok(())
    }

    /// Pop from this worker's own deque.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        // SAFETY: as in `push` — the calling thread owns this deque.
        let job = unsafe { self.deque().pop() };
        if job.is_some() {
            self.trace().on_pop();
        }
        job
    }

    /// Hunt for a job: own deque, then steal, then the injector.
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        self.pop().or_else(|| self.steal()).or_else(|| {
            let job = self.registry.pop_injected();
            if job.is_some() {
                self.trace().on_injector_pop();
            }
            job
        })
    }

    /// One sweep over the other workers' deques in rotated order,
    /// re-sweeping while any victim reports a lost race.
    fn steal(&self) -> Option<JobRef> {
        let n = self.registry.num_threads();
        if n <= 1 {
            return None;
        }
        // xorshift64 step for the sweep's starting victim.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        let start = (x as usize) % n;
        loop {
            let mut saw_retry = false;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == self.index {
                    continue;
                }
                self.trace().on_steal_attempt();
                match self.registry.deques[victim].steal() {
                    Steal::Success(job) => {
                        self.trace().on_steal_success(victim);
                        return Some(job);
                    }
                    Steal::Retry => {
                        self.trace().on_steal_retry();
                        saw_retry = true;
                    }
                    Steal::Empty => {}
                }
            }
            if !saw_retry {
                return None;
            }
        }
    }

    /// Work-stealing wait: keep the CPU busy with other jobs until `latch`
    /// is set, parking when the whole pool looks idle. This is what makes
    /// a blocked `join` frame a thief instead of a bystander.
    pub(crate) fn wait_until(&self, latch: &SpinLatch) {
        let mut idle: u32 = 0;
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                // SAFETY: the job came out of a deque or the injector,
                // each of which hands a ref to exactly one taker.
                unsafe { job.execute() };
                self.trace().on_job_executed();
                idle = 0;
            } else {
                idle += 1;
                if idle < SPINS_BEFORE_PARK {
                    std::thread::yield_now();
                } else {
                    self.registry.park(self.index, || latch.probe());
                    idle = 0;
                }
            }
        }
    }
}

/// A worker thread's whole life: publish the identity, hunt and execute
/// until terminated, unpublish.
fn main_loop(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread {
        registry,
        index,
        // Seed must be per-worker and nonzero for xorshift.
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ ((index as u64 + 1) << 17)),
    };
    WORKER.with(|w| w.set(&worker as *const WorkerThread));
    loop {
        while let Some(job) = worker.find_work() {
            // SAFETY: exactly-once hand-off per the deque/injector
            // protocols; job closures are caught by StackJob::execute_from,
            // so no unwind crosses this frame.
            unsafe { job.execute() };
            worker.trace().on_job_executed();
        }
        // ORDERING: Acquire pairs with `terminate`'s Release store.
        if worker.registry.terminate.load(Ordering::Acquire) {
            break;
        }
        worker.registry.park(index, || false);
    }
    WORKER.with(|w| w.set(ptr::null()));
}
