//! Slice extension traits: `par_chunks`, `par_chunks_mut`, and
//! `par_sort_unstable_by_key` (a depth-limited parallel merge sort).

use crate::current_num_threads;
use crate::iter::{Chunks, ChunksMut};
use std::marker::PhantomData;
use std::mem::MaybeUninit;

/// Below this many elements a (sub-)sort or merge runs sequentially.
const SORT_SEQ_CUTOFF: usize = 1 << 13;

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { s: self, size }
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;

    /// Sort the slice (not preserving equal-element order) by a key
    /// function, in parallel. Implemented as merge sort with a scratch
    /// buffer; recursion forks via [`crate::join`], with the fork depth
    /// sized to the current pool so work stealing can balance the halves.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _m: PhantomData,
        }
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        let n = self.len();
        let threads = if cfg!(miri) { 1 } else { current_num_threads() };
        if n < SORT_SEQ_CUTOFF || threads <= 1 {
            self.sort_unstable_by_key(|x| f(x));
            return;
        }
        let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit<T> needs no initialization.
        unsafe { scratch.set_len(n) };
        // log2(threads) levels saturate the pool; +2 oversplits so work
        // stealing can rebalance uneven halves.
        let depth = usize::BITS - threads.leading_zeros() + 2;
        sort_rec(self, &mut scratch, &f, depth);
    }
}

/// Sort `a` using `buf` as scratch; leaves the sorted data in `a`.
fn sort_rec<T: Send, K: Ord, F: Fn(&T) -> K + Sync>(
    a: &mut [T],
    buf: &mut [MaybeUninit<T>],
    f: &F,
    depth: u32,
) {
    let n = a.len();
    if depth == 0 || n < SORT_SEQ_CUTOFF {
        a.sort_unstable_by_key(|x| f(x));
        return;
    }
    let mid = n / 2;
    {
        let (al, ar) = a.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        crate::join(
            || sort_rec(al, bl, f, depth - 1),
            || sort_rec(ar, br, f, depth - 1),
        );
    }
    // SAFETY: the merge below *moves* elements out of `a` (ptr::read),
    // which is sound because nothing reads `a` again before the copy-back
    // overwrites it, and key extraction takes `&T` without dropping; `buf`
    // has capacity n and is exclusively ours.
    unsafe {
        let out = buf.as_mut_ptr() as *mut T;
        par_merge(
            RawSlice(a.as_ptr(), mid),
            RawSlice(a.as_ptr().add(mid), n - mid),
            SendOut(out),
            f,
            depth,
        );
        std::ptr::copy_nonoverlapping(out, a.as_mut_ptr(), n);
    }
}

/// `&[T]` as (ptr, len) so merge halves can cross `join` without a `T: Sync`
/// bound (elements are only read via ptr::read, i.e. moved).
struct RawSlice<T>(*const T, usize);
impl<T> Clone for RawSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawSlice<T> {}
// SAFETY: the two join branches receive disjoint sub-slices and disjoint
// output regions; elements are moved out exactly once.
unsafe impl<T: Send> Send for RawSlice<T> {}

/// Output cursor with the same justification as [`RawSlice`].
struct SendOut<T>(*mut T);
impl<T> Clone for SendOut<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendOut<T> {}
// SAFETY: see RawSlice.
unsafe impl<T: Send> Send for SendOut<T> {}

impl<T> RawSlice<T> {
    /// # Safety
    /// The underlying region must still be live and unaliased for reads for
    /// the whole caller-chosen lifetime `'s` (in practice: the merge call
    /// tree, which runs strictly inside the borrow taken in `sort_rec`).
    unsafe fn get<'s>(self) -> &'s [T]
    where
        T: 's,
    {
        // SAFETY: forwarded — the caller upholds the liveness/unaliasing
        // contract documented above.
        unsafe { std::slice::from_raw_parts(self.0, self.1) }
    }
}

/// Merge two sorted runs into `out`, moving the elements. Splits the larger
/// run at its midpoint, binary-searches the split key in the smaller run,
/// and forks the two sub-merges.
///
/// # Safety
/// `a`, `b`, and `out[..a.len+b.len]` must be live, mutually disjoint
/// regions; elements of `a`/`b` are moved out (read) exactly once.
unsafe fn par_merge<T: Send, K: Ord, F: Fn(&T) -> K + Sync>(
    a: RawSlice<T>,
    b: RawSlice<T>,
    out: SendOut<T>,
    f: &F,
    depth: u32,
) {
    let (n, m) = (a.1, b.1);
    if depth == 0 || n + m < SORT_SEQ_CUTOFF {
        // SAFETY: same contract, delegated unchanged to the sequential merge.
        unsafe { seq_merge(a.get(), b.get(), out.0, f) };
        return;
    }
    if n < m {
        // Keep the bisected run on the left for the midpoint choice.
        // SAFETY: same contract, arguments swapped (merge is symmetric).
        unsafe { par_merge(b, a, out, f, depth) };
        return;
    }
    let amid = n / 2;
    // SAFETY: caller guarantees `a` and `b` stay live and unaliased for
    // this whole merge call tree.
    let (a_s, b_s) = unsafe { (a.get(), b.get()) };
    let key = f(&a_s[amid]);
    let bmid = b_s.partition_point(|x| f(x) < key);
    let a1 = RawSlice(a.0, amid);
    // SAFETY: amid ≤ n, so the offset stays inside `a`'s region.
    let a2 = unsafe { RawSlice(a.0.add(amid), n - amid) };
    let b1 = RawSlice(b.0, bmid);
    // SAFETY: bmid ≤ m (partition_point), so the offset stays inside `b`.
    let b2 = unsafe { RawSlice(b.0.add(bmid), m - bmid) };
    // SAFETY: amid + bmid ≤ n + m, the caller-guaranteed length of `out`.
    let out2 = unsafe { SendOut(out.0.add(amid + bmid)) };
    crate::join(
        // SAFETY: [a1,b1]→out[..amid+bmid] and [a2,b2]→out[amid+bmid..] are
        // disjoint in both sources and destination; every element of part 1
        // compares ≤ key ≤ every element of part 2, so concatenation of the
        // two merged parts is sorted.
        move || unsafe { par_merge(a1, b1, out, f, depth - 1) },
        // SAFETY: as above, for the disjoint second halves.
        move || unsafe { par_merge(a2, b2, out2, f, depth - 1) },
    );
}

/// # Safety
/// Same contract as [`par_merge`].
unsafe fn seq_merge<T, K: Ord, F: Fn(&T) -> K>(a: &[T], b: &[T], mut out: *mut T, f: &F) {
    let (mut i, mut j) = (0, 0);
    // SAFETY: per the contract, `out` has room for a.len() + b.len()
    // elements disjoint from `a`/`b`, and each source element is moved
    // out exactly once (i/j only advance past moved elements).
    unsafe {
        while i < a.len() && j < b.len() {
            if f(&b[j]) < f(&a[i]) {
                out.write(std::ptr::read(&b[j]));
                j += 1;
            } else {
                out.write(std::ptr::read(&a[i]));
                i += 1;
            }
            out = out.add(1);
        }
        std::ptr::copy_nonoverlapping(a.as_ptr().add(i), out, a.len() - i);
        out = out.add(a.len() - i);
        std::ptr::copy_nonoverlapping(b.as_ptr().add(j), out, b.len() - j);
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_chunks_cover_slice() {
        let v: Vec<u32> = (0..1000).collect();
        let sums: Vec<u32> = v.par_chunks(96).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 1000usize.div_ceil(96));
        assert_eq!(sums.iter().sum::<u32>(), (0..1000).sum::<u32>());
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut v = vec![0u8; 250];
        v.par_chunks_mut(16).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u8;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[16], 1);
        assert_eq!(v[249], (249 / 16) as u8);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Big enough to take the parallel path under an installed pool.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let n = 100_000u64;
        let mut v: Vec<(u64, u64)> = (0..n)
            .map(|i| (i.wrapping_mul(0x9e3779b9) % 1000, i))
            .collect();
        let mut expect = v.clone();
        pool.install(|| v.par_sort_unstable_by_key(|&(k, _)| k));
        expect.sort_unstable_by_key(|&(k, _)| k);
        v.sort_unstable(); // normalize equal-key order for comparison
        expect.sort_unstable();
        assert_eq!(v, expect);
        // And the keys really are sorted after par_sort alone.
        let mut w: Vec<(u64, u64)> = (0..n).map(|i| (n - i, i)).collect();
        pool.install(|| w.par_sort_unstable_by_key(|&(k, _)| k));
        assert!(w.windows(2).all(|p| p[0].0 <= p[1].0));
    }

    #[test]
    fn par_sort_small_and_empty() {
        let mut v: Vec<(u64, u64)> = vec![];
        v.par_sort_unstable_by_key(|&(k, _)| k);
        let mut w = vec![(3u64, 0u64), (1, 1), (2, 2)];
        w.par_sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(w, vec![(1, 1), (2, 2), (3, 0)]);
    }
}
