//! Glob-import surface matching `rayon::prelude`.

pub use crate::iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
    IntoParallelRefMutIterator, ParallelIterator, RandomAccess,
};
pub use crate::slice::{ParallelSlice, ParallelSliceMut};
