//! Parallel iterators: sources, adapters, and consumers.
//!
//! Architecture: a parallel iterator is a *description* of an indexed item
//! stream — it knows its exact length and how to feed the items of any index
//! sub-range, in order, to a callback ([`ParallelIterator::pi_drive`]).
//! Consumers split `0..len` into blocks with `run_blocks` (crate-private), drive
//! each block (possibly on different threads), and combine per-block
//! results in index order. Adapters (`map`, `filter`, `enumerate`, …) wrap
//! the drive callback. `zip` additionally needs random access to its right
//! side, expressed by the [`RandomAccess`] sub-trait that all sources
//! implement.

use crate::run_blocks;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// An exactly-sized parallel item stream. See the module docs for the model.
pub trait ParallelIterator: Sized + Sync {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Exact number of items.
    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    /// Minimum number of items a parallel block should hold.
    #[doc(hidden)]
    fn pi_min_len(&self) -> usize {
        1
    }

    /// Feed the items with indices in `r`, in increasing index order, to `f`.
    ///
    /// # Safety
    ///
    /// Across one consumption of the iterator, every index must be driven at
    /// most once (sources like `into_par_iter` move items out by index, and
    /// `par_iter_mut` hands out `&mut` by index).
    #[doc(hidden)]
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F);

    // ---- adapters -------------------------------------------------------

    /// Require at least `min` items per parallel block.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Transform every item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair every item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Iterate two equally indexable streams in lockstep.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        Self: RandomAccess,
        B: IntoParallelIterator,
        B::Iter: RandomAccess,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Keep only items satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, p }
    }

    /// Map to an `Option` and keep the `Some` payloads.
    fn filter_map<R, P>(self, p: P) -> FilterMap<Self, P>
    where
        R: Send,
        P: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, p }
    }

    /// Map every item to a sequential iterator and flatten the results.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Copy out of an iterator over references.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Clone out of an iterator over references.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned { base: self }
    }

    // ---- consumers ------------------------------------------------------

    /// Run `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_blocks(self.pi_len(), self.pi_min_len(), &|r| {
            // SAFETY: run_blocks partitions 0..len disjointly.
            unsafe { self.pi_drive(r, &mut |x| f(x)) };
        });
    }

    /// Collect into a container (only `Vec` in this shim).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts: Vec<S> = run_blocks(self.pi_len(), self.pi_min_len(), &|r| {
            let mut acc: Option<S> = None;
            // SAFETY: disjoint blocks.
            unsafe {
                self.pi_drive(r, &mut |x| {
                    let v: S = std::iter::once(x).sum();
                    acc = Some(match acc.take() {
                        None => v,
                        Some(a) => [a, v].into_iter().sum(),
                    });
                });
            }
            acc.unwrap_or_else(|| std::iter::empty::<Self::Item>().sum())
        });
        parts.into_iter().sum()
    }

    /// Number of items (after filtering).
    fn count(self) -> usize {
        run_blocks(self.pi_len(), self.pi_min_len(), &|r| {
            let mut c = 0usize;
            // SAFETY: disjoint blocks.
            unsafe { self.pi_drive(r, &mut |_| c += 1) };
            c
        })
        .into_iter()
        .sum()
    }

    /// Whether any item satisfies `p`.
    fn any<P>(self, p: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync,
    {
        let found = AtomicBool::new(false);
        self.for_each(|x| {
            // ORDERING: Relaxed early-exit hint; missing a concurrent set
            // only evaluates `p` on extra items.
            // publishes-via: fork-join barrier (for_each join)
            if !found.load(Ordering::Relaxed) && p(x) {
                // ORDERING: Relaxed monotone flag set, read after join.
                // publishes-via: fork-join barrier (for_each join)
                found.store(true, Ordering::Relaxed);
            }
        });
        // ORDERING: Relaxed post-join read; all setters joined above.
        // publishes-via: fork-join barrier (for_each join)
        found.load(Ordering::Relaxed)
    }

    /// Whether every item satisfies `p`.
    fn all<P>(self, p: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync,
    {
        !self.any(|x| !p(x))
    }

    /// Largest item, `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.extreme(|a, b| a < b)
    }

    /// Smallest item, `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.extreme(|a, b| a > b)
    }

    #[doc(hidden)]
    fn extreme(self, worse: impl Fn(&Self::Item, &Self::Item) -> bool + Sync) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let parts = run_blocks(self.pi_len(), self.pi_min_len(), &|r| {
            let mut best: Option<Self::Item> = None;
            // SAFETY: disjoint blocks.
            unsafe {
                self.pi_drive(r, &mut |x| match &best {
                    Some(b) if !worse(b, &x) => {}
                    _ => best = Some(x),
                });
            }
            best
        });
        parts.into_iter().flatten().fold(None, |acc, x| match acc {
            Some(b) if !worse(&b, &x) => Some(b),
            _ => Some(x),
        })
    }
}

/// Random access to items by index; required by `zip`. All sources (slices,
/// vecs, ranges) implement it.
///
/// # Safety
///
/// Implementations hand out items by index; callers must request each index
/// at most once per consumption (same contract as `pi_drive`).
pub unsafe trait RandomAccess: ParallelIterator {
    /// Produce the item at index `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and requested at most once per consumption.
    unsafe fn pi_get(&self, i: usize) -> Self::Item;
}

/// Build a container from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Consume `it` into the container.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let parts = run_blocks(it.pi_len(), it.pi_min_len(), &|r| {
            let mut v = Vec::with_capacity(r.len());
            // SAFETY: disjoint blocks.
            unsafe { it.pi_drive(r, &mut |x| v.push(x)) };
            v
        });
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---- conversion entry points -------------------------------------------

/// By-value conversion into a parallel iterator (`Vec`, integer ranges).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` — by-shared-reference parallel iteration.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: Send + 'a;
    /// Borrowing conversion into a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` — by-mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a mutable reference).
    type Item: Send + 'a;
    /// Mutably borrowing conversion into a parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<I: ParallelIterator> IntoParallelIterator for I {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> I {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIntoIter<T> {
        VecIntoIter::new(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = IterSlice<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> IterSlice<'a, T> {
        IterSlice { s: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = IterSlice<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> IterSlice<'a, T> {
        IterSlice { s: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = IterSliceMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> IterSliceMut<'a, T> {
        IterSliceMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _m: PhantomData,
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = IterSliceMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> IterSliceMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

// ---- sources ------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct IterSlice<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for IterSlice<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.s.len()
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        let s: &'a [T] = self.s;
        for x in &s[r] {
            f(x);
        }
    }
}

// SAFETY: shared references may be produced for any index any number of
// times; the once-per-index contract is trivially satisfied.
unsafe impl<'a, T: Sync> RandomAccess for IterSlice<'a, T> {
    unsafe fn pi_get(&self, i: usize) -> &'a T {
        let s: &'a [T] = self.s;
        &s[i]
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterSliceMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    _m: PhantomData<&'a mut [T]>,
}

// SAFETY: the iterator owns an exclusive borrow of the slice; items are
// handed out at most once per index (drive contract), so no two threads
// ever hold `&mut` to the same element.
unsafe impl<T: Send> Send for IterSliceMut<'_, T> {}
// SAFETY: as above — `&IterSliceMut` only enables the once-per-index drive.
unsafe impl<T: Send> Sync for IterSliceMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for IterSliceMut<'a, T> {
    type Item = &'a mut T;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        for i in r {
            // SAFETY: i < len (run_blocks ranges are in bounds) and each
            // index is driven once, so this &mut is unique.
            f(unsafe { &mut *self.ptr.add(i) });
        }
    }
}

// SAFETY: once-per-index contract is the caller's obligation (trait docs).
unsafe impl<'a, T: Send + 'a> RandomAccess for IterSliceMut<'a, T> {
    unsafe fn pi_get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        // SAFETY: the caller visits each index at most once (trait
        // contract), so this is the only live &mut to element i; i < len.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Owning parallel iterator over a `Vec`'s elements.
pub struct VecIntoIter<T: Send> {
    ptr: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: elements are moved out at most once per index; the struct is only
// shared to coordinate that disjoint movement.
unsafe impl<T: Send> Send for VecIntoIter<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for VecIntoIter<T> {}

impl<T: Send> VecIntoIter<T> {
    fn new(v: Vec<T>) -> Self {
        let mut v = ManuallyDrop::new(v);
        VecIntoIter {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
        }
    }
}

impl<T: Send> Drop for VecIntoIter<T> {
    fn drop(&mut self) {
        // Free the allocation without dropping elements: every element was
        // moved out by pi_drive during consumption. (If a consumer panics
        // mid-drive, un-driven elements leak rather than double-drop —
        // the safe direction.)
        // SAFETY: ptr/cap came from a Vec we took over; len 0 drops nothing.
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, 0, self.cap));
        }
    }
}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        for i in r {
            // SAFETY: in bounds; each index driven once, so each element is
            // moved out exactly once.
            f(unsafe { std::ptr::read(self.ptr.add(i)) });
        }
    }
}

// SAFETY: once-per-index contract is the caller's obligation (trait docs).
unsafe impl<T: Send> RandomAccess for VecIntoIter<T> {
    unsafe fn pi_get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        // SAFETY: i < len and the once-per-index contract makes this the
        // single read (move) of element i; Drop skips consumed elements.
        unsafe { std::ptr::read(self.ptr.add(i)) }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

/// Integer types usable as parallel-range endpoints. One generic impl (as
/// opposed to one impl per integer type) keeps type inference working for
/// unsuffixed literals like `(0..n).into_par_iter()`.
pub trait RangeInt: Copy + Send + Sync {
    #[doc(hidden)]
    fn ri_add(self, i: usize) -> Self;
    #[doc(hidden)]
    fn ri_delta(end: Self, start: Self) -> usize;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn ri_add(self, i: usize) -> $t {
                self + i as $t
            }
            fn ri_delta(end: $t, start: $t) -> usize {
                if end > start {
                    (end - start) as usize
                } else {
                    0
                }
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: RangeInt> IntoParallelIterator for Range<T> {
    type Iter = RangeIter<T>;
    type Item = T;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter {
            start: self.start,
            len: T::ri_delta(self.end, self.start),
        }
    }
}

impl<T: RangeInt> ParallelIterator for RangeIter<T> {
    type Item = T;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn pi_drive<F: FnMut(T)>(&self, r: Range<usize>, f: &mut F) {
        for i in r {
            f(self.start.ri_add(i));
        }
    }
}

// SAFETY: values are computed, not moved; any index may be produced.
unsafe impl<T: RangeInt> RandomAccess for RangeIter<T> {
    unsafe fn pi_get(&self, i: usize) -> T {
        self.start.ri_add(i)
    }
}

/// Parallel iterator over fixed-size chunks of `&[T]`.
pub struct Chunks<'a, T: Sync> {
    pub(crate) s: &'a [T],
    pub(crate) size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    fn pi_len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        let s: &'a [T] = self.s;
        for b in r {
            let lo = b * self.size;
            let hi = (lo + self.size).min(s.len());
            f(&s[lo..hi]);
        }
    }
}

/// Parallel iterator over fixed-size chunks of `&mut [T]`.
pub struct ChunksMut<'a, T: Send> {
    pub(crate) ptr: *mut T,
    pub(crate) len: usize,
    pub(crate) size: usize,
    pub(crate) _m: PhantomData<&'a mut [T]>,
}

// SAFETY: chunk index ranges are disjoint by construction and each chunk is
// driven once, so no two `&mut [T]` overlap.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        for b in r {
            let lo = b * self.size;
            let hi = (lo + self.size).min(self.len);
            // SAFETY: chunk [lo, hi) is in bounds and driven exactly once.
            f(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) });
        }
    }
}

// ---- adapters -----------------------------------------------------------

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<S> {
    base: S,
    min: usize,
}

impl<S: ParallelIterator> ParallelIterator for MinLen<S> {
    type Item = S::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.min.max(self.base.pi_min_len())
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe { self.base.pi_drive(r, f) }
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<G: FnMut(R)>(&self, r: Range<usize>, f: &mut G) {
        let map = &self.f;
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe { self.base.pi_drive(r, &mut |x| f(map(x))) }
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<S> {
    base: S,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        let mut i = r.start;
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe {
            self.base.pi_drive(r, &mut |x| {
                f((i, x));
                i += 1;
            });
        }
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: RandomAccess, B: RandomAccess> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    fn pi_min_len(&self) -> usize {
        self.a.pi_min_len().max(self.b.pi_min_len())
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        for i in r {
            // SAFETY: forwarding the once-per-index contract to both sides.
            f(unsafe { (self.a.pi_get(i), self.b.pi_get(i)) });
        }
    }
}

// SAFETY: forwards the once-per-index contract to both sides.
unsafe impl<A: RandomAccess, B: RandomAccess> RandomAccess for Zip<A, B> {
    unsafe fn pi_get(&self, i: usize) -> Self::Item {
        // SAFETY: forwarded to both sides for the same index i.
        unsafe { (self.a.pi_get(i), self.b.pi_get(i)) }
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<S, P> {
    base: S,
    p: P,
}

impl<S, P> ParallelIterator for Filter<S, P>
where
    S: ParallelIterator,
    P: Fn(&S::Item) -> bool + Sync,
{
    type Item = S::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, r: Range<usize>, f: &mut F) {
        let keep = &self.p;
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe {
            self.base.pi_drive(r, &mut |x| {
                if keep(&x) {
                    f(x);
                }
            });
        }
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<S, P> {
    base: S,
    p: P,
}

impl<S, R, P> ParallelIterator for FilterMap<S, P>
where
    S: ParallelIterator,
    R: Send,
    P: Fn(S::Item) -> Option<R> + Sync,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<F: FnMut(R)>(&self, r: Range<usize>, f: &mut F) {
        let fm = &self.p;
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe {
            self.base.pi_drive(r, &mut |x| {
                if let Some(y) = fm(x) {
                    f(y);
                }
            });
        }
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<S, F> {
    base: S,
    f: F,
}

impl<S, I, F> ParallelIterator for FlatMapIter<S, F>
where
    S: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(S::Item) -> I + Sync,
{
    type Item = I::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<G: FnMut(I::Item)>(&self, r: Range<usize>, f: &mut G) {
        let fm = &self.f;
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe {
            self.base.pi_drive(r, &mut |x| {
                for y in fm(x) {
                    f(y);
                }
            });
        }
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<S> {
    base: S,
}

impl<'a, T, S> ParallelIterator for Copied<S>
where
    T: Copy + Send + Sync + 'a,
    S: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<F: FnMut(T)>(&self, r: Range<usize>, f: &mut F) {
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe { self.base.pi_drive(r, &mut |x| f(*x)) }
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<S> {
    base: S,
}

impl<'a, T, S> ParallelIterator for Cloned<S>
where
    T: Clone + Send + Sync + 'a,
    S: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_min_len(&self) -> usize {
        self.base.pi_min_len()
    }
    unsafe fn pi_drive<F: FnMut(T)>(&self, r: Range<usize>, f: &mut F) {
        // SAFETY: forwarded — same range, same once-per-index contract.
        unsafe { self.base.pi_drive(r, &mut |x| f(x.clone())) }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u32> = (0..1000u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_noncopy_items() {
        let src: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = src.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut v = vec![0u64; 4096];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u64);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn zip_pairs_by_index() {
        let a = vec![1u64, 2, 3, 4];
        let mut b = vec![0u64; 4];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(dst, &src)| *dst = src * 10);
        assert_eq!(b, vec![10, 20, 30, 40]);
    }

    #[test]
    fn filter_count_sum_agree() {
        let n = 10_000usize;
        let evens = (0..n).into_par_iter().filter(|x| x % 2 == 0).count();
        assert_eq!(evens, n / 2);
        let s: usize = (0..n).into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, (0..n).filter(|x| x % 2 == 0).sum::<usize>());
    }

    #[test]
    fn any_all_min_max() {
        let v: Vec<i64> = (-50..50).collect();
        assert!(v.par_iter().any(|&x| x == 49));
        assert!(!v.par_iter().any(|&x| x == 50));
        assert!(v.par_iter().all(|&x| x < 50));
        assert_eq!(v.par_iter().copied().max(), Some(49));
        assert_eq!(v.par_iter().copied().min(), Some(-50));
        let empty: Vec<i64> = vec![];
        assert_eq!(empty.par_iter().copied().max(), None);
    }

    #[test]
    fn filter_map_keeps_some() {
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|x| if x % 10 == 0 { Some(x / 10) } else { None })
            .collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_are_global() {
        let v = vec![7u8; 5000];
        let idx: Vec<usize> = v.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, (0..5000).collect::<Vec<_>>());
    }
}
