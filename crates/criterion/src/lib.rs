//! A registry-free stand-in for the `criterion` crate.
//!
//! The build sandbox has no access to crates.io, so this crate implements
//! the subset of the criterion API the bench targets use: `Criterion` with
//! `sample_size`/`warm_up_time`/`measurement_time`, benchmark groups with
//! `throughput`/`bench_function`/`bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's full
//! statistical analysis it reports min / mean / max wall time per benchmark
//! (plus throughput when configured), which is enough to read off the
//! ablation comparisons this workspace cares about.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of the std
/// hint, which is what recent criterion versions use too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark harness configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// How long to run untimed warm-up iterations.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Target duration for the timed samples (an upper bound here: sampling
    /// stops at `sample_size` samples or this much elapsed time).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure that receives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.into_benchmark_id().id, self.throughput);
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Finish the group (report output already happened per benchmark).
    pub fn finish(self) {}
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Runs and times the benchmark body.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: warm up until the warm-up budget is spent, then record up
    /// to `sample_size` samples (bounded by the measurement budget).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let measure_deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if Instant::now() >= measure_deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id:<28} (no samples)");
            return;
        }
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" {:>8.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => format!(
                " {:>8.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            ),
        });
        eprintln!(
            "{group}/{id:<28} mean {:>10.3?}  min {:>10.3?}  max {:>10.3?}  ({} samples){}",
            mean,
            min,
            max,
            self.samples.len(),
            rate.unwrap_or_default(),
        );
    }
}

/// Define a benchmark group function from targets, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from benchmark groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(7u32) * 6));
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("alg", 42).id, "alg/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
