//! Exhaustive race model of the baseline scatter-pack slot claim.
//!
//! `scatter_pack`'s scatter phase claims slots with a fully Relaxed
//! vacancy-probe + CAS whose payload is the CAS word itself (the record
//! index); the pack phase reads the slots only after the fork-join
//! barrier. The model mirrors that loop over the in-tree `loom` shim and
//! runs every interleaving of 2 contending threads — same pattern as the
//! other `race_model.rs` files; see `crates/xtask/atomics.toml` for the
//! protocol→model mapping the audit-atomics gate enforces.
//!
//! Not run under Miri: the explorer spawns thousands of real scheduled
//! threads, which Miri executes orders of magnitude too slowly.

#![cfg(not(miri))]

use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The vacancy sentinel (`scatter_pack::EMPTY`).
const EMPTY: u64 = u64::MAX;

#[test]
fn baseline_slot_claims_are_exclusive() {
    // 2 threads × 2 records into a 4-slot array, both probing from slot 0:
    // slots 0 and 1 are contended in every schedule and the array ends
    // exactly full (the boundary where a duplicate claim would also evict
    // a record).
    loom::model(|| {
        let slot_of: Arc<Vec<AtomicU64>> =
            Arc::new((0..4).map(|_| AtomicU64::new(EMPTY)).collect());
        let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = [[0u64, 1], [2, 3]]
            .into_iter()
            .map(|ids| {
                let slot_of = slot_of.clone();
                let claims = claims.clone();
                thread::spawn(move || {
                    for i in ids {
                        let mut s = 0usize;
                        loop {
                            if slot_of[s].load(Ordering::Relaxed) == EMPTY
                                && slot_of[s]
                                    .compare_exchange(
                                        EMPTY,
                                        i,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                claims[s].fetch_add(1, StdOrdering::Relaxed);
                                break;
                            }
                            s = (s + 1) & 3;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(StdOrdering::Relaxed),
                1,
                "slot {i} must be claimed exactly once"
            );
        }
        let mut landed: Vec<u64> = slot_of.iter().map(AtomicU64::unsync_load).collect();
        landed.sort_unstable();
        assert_eq!(
            landed,
            vec![0, 1, 2, 3],
            "every record index lands exactly once"
        );
    });
}
