//! Semisort via naming + Rajasekaran–Reif integer sort — the approach the
//! paper argues *against*.
//!
//! "Semisorting can also be implemented in linear work by hashing into
//! range `[1..nᵏ]` and then sorting the keys using an integer sort …
//! \[after\] a preprocessing step that reduces the integer range. In
//! practice, however, this is not a competitive approach since just the
//! initial preprocessing using a hash table requires about as much work as
//! the whole sequential algorithm" (§1). This module implements exactly
//! that pipeline so the `rr_compare` harness can measure the claim:
//!
//! 1. **Naming** (§2): assign each distinct hashed key a dense label in
//!    `[O(m)]` with two phase-concurrent hash-table passes.
//! 2. **Integer sort**: RR-sort the records by label.
//!
//! Equal labels ⇔ equal keys, so the sorted-by-label order is a semisort.

use std::time::{Duration, Instant};

use parlay::hash_table::PhaseConcurrentMap;
use parlay::rr_sort::rr_sort_by_key;
use rayon::prelude::*;

/// Phase timings for the pipeline (preprocessing vs sort — the §1 claim is
/// about their ratio).
#[derive(Clone, Copy, Debug, Default)]
pub struct RrSemisortTiming {
    /// The naming preprocessing (hash-table insert + relabel passes).
    pub naming: Duration,
    /// The integer sort proper.
    pub sort: Duration,
}

/// Semisort by naming + RR integer sort. Returns the output and timings.
pub fn rr_semisort(records: &[(u64, u64)]) -> (Vec<(u64, u64)>, RrSemisortTiming) {
    let n = records.len();
    let mut timing = RrSemisortTiming::default();
    if n <= 1 {
        return (records.to_vec(), timing);
    }

    // The naming table reserves u64::MAX as its vacancy sentinel. Records
    // carrying that key (a ~n/2^64 event for hashed keys) are split off and
    // appended as their own group — never silently merged with another key.
    if records.par_iter().any(|r| r.0 == parlay::hash_table::EMPTY) {
        let main: Vec<(u64, u64)> = records
            .iter()
            .copied()
            .filter(|r| r.0 != parlay::hash_table::EMPTY)
            .collect();
        let sentinels: Vec<(u64, u64)> = records
            .iter()
            .copied()
            .filter(|r| r.0 == parlay::hash_table::EMPTY)
            .collect();
        let (mut out, timing) = rr_semisort(&main);
        out.extend(sentinels);
        return (out, timing);
    }

    // Naming: phase 1 inserts every key (electing one winner per key);
    // phase 2 walks the table's occupied slots and assigns dense labels;
    // phase 3 looks up each record's label.
    let t = Instant::now();
    let table = PhaseConcurrentMap::<u32>::new(n);
    records.par_iter().with_min_len(4096).for_each(|&(k, _)| {
        table.insert(k, 0);
    });
    // Dense labels in slot-scan order (deterministic given the table state).
    let distinct = table.entries();
    let m = distinct.len();
    let label_of = PhaseConcurrentMap::<u32>::new(m);
    distinct
        .par_iter()
        .enumerate()
        .with_min_len(2048)
        .for_each(|(label, &(k, _))| {
            label_of.insert(k, label as u32);
        });
    let labeled: Vec<(u64, (u64, u64))> = records
        .par_iter()
        .with_min_len(4096)
        .map(|&r| {
            let label = label_of.lookup(r.0).expect("every key was named") as u64;
            (label, r)
        })
        .collect();
    timing.naming = t.elapsed();

    // Integer sort on labels in [m] ⊆ [n].
    let t = Instant::now();
    let bits = if m <= 1 {
        1
    } else {
        64 - (m as u64 - 1).leading_zeros()
    };
    let mut work = labeled;
    rr_sort_by_key(&mut work, bits, |p| p.0);
    timing.sort = t.elapsed();

    (work.into_iter().map(|p| p.1).collect(), timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn produces_a_valid_semisort() {
        let recs: Vec<(u64, u64)> = (0..60_000u64)
            .map(|i| (parlay::hash64(i % 1234), i))
            .collect();
        let (out, timing) = rr_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
        assert!(timing.naming > Duration::ZERO);
    }

    #[test]
    fn empty_single_and_all_equal() {
        assert!(rr_semisort(&[]).0.is_empty());
        assert_eq!(rr_semisort(&[(3, 4)]).0, vec![(3, 4)]);
        let eq: Vec<(u64, u64)> = (0..20_000u64).map(|i| (9, i)).collect();
        let (out, _) = rr_semisort(&eq);
        assert!(is_permutation_of(&out, &eq));
    }

    #[test]
    fn all_distinct_keys() {
        let recs: Vec<(u64, u64)> = (0..40_000u64).map(|i| (parlay::hash64(i), i)).collect();
        let (out, _) = rr_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn sentinel_key_handled() {
        let mut recs: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (parlay::hash64(i % 50), i))
            .collect();
        recs[100].0 = u64::MAX;
        recs[200].0 = u64::MAX;
        let (out, _) = rr_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
        let max_count = out.iter().filter(|r| r.0 == u64::MAX).count();
        assert_eq!(max_count, 2);
    }
}
