//! The sequential two-phase count-then-place semisort.
//!
//! One of the alternatives §5.4 tried and found "even less efficient" than
//! the chained table: "a two-phase approach where we simply count the
//! multiplicity of each key, allocate enough space for each key, and write
//! the records into the appropriate locations". Two full passes over the
//! data, but no linked-list pointer chasing.

/// Semisort `(key, value)` records: pass 1 counts multiplicities in an
/// open-addressed table, a prefix sum assigns each key a contiguous output
/// range, and pass 2 writes every record into its range.
pub fn seq_two_phase_semisort<V: Copy>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = (2 * n).next_power_of_two();
    let mask = cap - 1;
    let mut dir_key: Vec<u64> = vec![0; cap];
    let mut dir_count: Vec<usize> = vec![0; cap]; // 0 = unused
    let mut slots_in_order: Vec<usize> = Vec::new();

    // Pass 1: count multiplicity per key.
    for &(key, _) in records {
        let mut s = (parlay::hash64(key) as usize) & mask;
        loop {
            if dir_count[s] == 0 {
                dir_key[s] = key;
                dir_count[s] = 1;
                slots_in_order.push(s);
                break;
            }
            if dir_key[s] == key {
                dir_count[s] += 1;
                break;
            }
            s = (s + 1) & mask;
        }
    }

    // Prefix sum: dir_count becomes each key's write cursor.
    let mut acc = 0usize;
    for &s in &slots_in_order {
        let c = dir_count[s];
        dir_count[s] = acc;
        acc += c;
    }
    debug_assert_eq!(acc, n);

    // Pass 2: place.
    let mut out: Vec<(u64, V)> = Vec::with_capacity(n);
    let spare = out.spare_capacity_mut();
    for &(key, value) in records {
        let mut s = (parlay::hash64(key) as usize) & mask;
        while dir_key[s] != key {
            s = (s + 1) & mask;
        }
        spare[dir_count[s]].write((key, value));
        dir_count[s] += 1;
    }
    // SAFETY: exactly n writes at the n distinct cursor positions.
    unsafe { out.set_len(n) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn empty_and_single() {
        assert!(seq_two_phase_semisort::<u64>(&[]).is_empty());
        assert_eq!(seq_two_phase_semisort(&[(5u64, 9u64)]), vec![(5, 9)]);
    }

    #[test]
    fn groups_mixed_input() {
        let recs: Vec<(u64, u64)> = (0..50_000u64)
            .map(|i| (parlay::hash64(i % 333), i))
            .collect();
        let out = seq_two_phase_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn preserves_input_order_within_groups() {
        // Unlike the chained version (LIFO), two-phase placement is stable.
        let recs = vec![(7u64, 0u64), (3, 1), (7, 2), (3, 3)];
        let out = seq_two_phase_semisort(&recs);
        assert_eq!(out, vec![(7, 0), (7, 2), (3, 1), (3, 3)]);
    }

    #[test]
    fn skewed_input() {
        let recs: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (if i % 100 == 0 { parlay::hash64(i) } else { 1 }, i))
            .collect();
        let out = seq_two_phase_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }
}
