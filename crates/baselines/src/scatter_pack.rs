//! The scatter + pack lower bound (Table 4, Figure 5).
//!
//! "As a baseline, we compare the performance of our semisorting algorithm
//! to just a scatter and pack (the minimal work one would need to do to
//! perform semisorting)" — every semisort must at least move each record
//! once to a computed position (scatter) and produce a contiguous output
//! (pack). This baseline does exactly that and nothing else: one CAS write
//! per record into a half-loaded slot array, then one blocked compaction.
//! Semisort's overhead factor on top of this (1.5–2× in the paper) is the
//! price of the sampling, routing, and local sorting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parlay::random::Rng;
use parlay::shared::SendPtr;
use rayon::prelude::*;

/// Timings of the two component operations.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScatterPackTiming {
    /// The random-write scatter.
    pub scatter: Duration,
    /// The compaction pack.
    pub pack: Duration,
}

impl ScatterPackTiming {
    /// Scatter + pack combined.
    pub fn total(&self) -> Duration {
        self.scatter + self.pack
    }
}

/// Scatter `records` into random slots of a `2n`-slot array (CAS + linear
/// probing), then pack the occupied slots into a contiguous output.
///
/// Returns the output (an arbitrary permutation of the input) and the
/// per-operation timings the harness reports.
pub fn scatter_and_pack(records: &[(u64, u64)], seed: u64) -> (Vec<(u64, u64)>, ScatterPackTiming) {
    let n = records.len();
    let mut timing = ScatterPackTiming::default();
    if n == 0 {
        return (Vec::new(), timing);
    }
    let slots = (2 * n).next_power_of_two();
    let mask = slots - 1;
    const EMPTY: u64 = u64::MAX;

    // Slot array: index of the record + 1 sentinel-free trick is avoided by
    // storing record indices (EMPTY = vacant), so record keys can be any u64.
    let slot_of: Vec<AtomicU64> = (0..slots)
        .into_par_iter()
        .with_min_len(1 << 14)
        .map(|_| AtomicU64::new(EMPTY))
        .collect();

    let rng = Rng::new(seed);
    let t = Instant::now();
    (0..n).into_par_iter().with_min_len(4096).for_each(|i| {
        let mut s = (rng.at(i as u64) as usize) & mask;
        loop {
            // ORDERING: Relaxed vacancy probe + fully Relaxed CAS: the
            // claim payload is the record index in the CAS word itself,
            // and the pack phase reads it only after the join.
            // publishes-via: fork-join barrier (for_each join)
            if slot_of[s].load(Ordering::Relaxed) == EMPTY
                && slot_of[s]
                    .compare_exchange(EMPTY, i as u64, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            s = (s + 1) & mask;
        }
    });
    timing.scatter = t.elapsed();

    // Pack: blocked count → scan → write.
    let t = Instant::now();
    let blocks = parlay::slices::num_blocks(slots);
    let mut offsets: Vec<usize> = (0..blocks)
        .into_par_iter()
        .map(|b| {
            // ORDERING: Relaxed post-join reads of scatter results.
            // publishes-via: fork-join barrier (scatter join)
            parlay::slices::block_range(b, blocks, slots)
                .filter(|&i| slot_of[i].load(Ordering::Relaxed) != EMPTY)
                .count()
        })
        .collect();
    let total = parlay::scan_add_exclusive(&mut offsets);
    debug_assert_eq!(total, n);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(n);
    let out_ptr = SendPtr(out.spare_capacity_mut().as_mut_ptr());
    (0..blocks).into_par_iter().for_each(|b| {
        let mut pos = offsets[b];
        let ptr = out_ptr;
        for i in parlay::slices::block_range(b, blocks, slots) {
            // ORDERING: Relaxed post-join read of scatter results.
            // publishes-via: fork-join barrier (scatter join)
            let v = slot_of[i].load(Ordering::Relaxed);
            if v != EMPTY {
                // SAFETY: offsets partition [0, n) across blocks.
                unsafe { (*ptr.0.add(pos)).write(records[v as usize]) };
                pos += 1;
            }
        }
    });
    // SAFETY: every slot in [0, n) written exactly once above.
    unsafe { out.set_len(n) };
    timing.pack = t.elapsed();

    (out, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::is_permutation_of;

    #[test]
    fn output_is_a_permutation() {
        let recs: Vec<(u64, u64)> = (0..50_000u64).map(|i| (parlay::hash64(i), i)).collect();
        let (out, timing) = scatter_and_pack(&recs, 7);
        assert!(is_permutation_of(&out, &recs));
        assert!(timing.total() >= timing.scatter);
    }

    #[test]
    fn empty_input() {
        let (out, _) = scatter_and_pack(&[], 1);
        assert!(out.is_empty());
    }

    #[test]
    fn different_seeds_scatter_differently() {
        let recs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i, i)).collect();
        let (a, _) = scatter_and_pack(&recs, 1);
        let (b, _) = scatter_and_pack(&recs, 2);
        assert!(is_permutation_of(&a, &b));
        assert_ne!(a, b, "seed must shuffle the output");
    }

    #[test]
    fn single_record() {
        let (out, _) = scatter_and_pack(&[(9, 1)], 3);
        assert_eq!(out, vec![(9, 1)]);
    }
}
