//! Baseline semisort and sort implementations from the paper's evaluation.
//!
//! §5 compares the parallel semisort against:
//!
//! - a **sequential chained-hash-table semisort** (the classic algorithm the
//!   introduction describes; semisort beats it by ~20% on one thread) —
//!   [`seq_hash`];
//! - other sequential variants the authors "tried … but found them to be
//!   even less efficient": open addressing with per-key chains and a
//!   two-phase count-then-place approach — [`seq_open`], [`seq_two_phase`];
//! - **parallel radix sort** (in `parlay::radix_sort`, since it is also the
//!   semisort's sampling subroutine);
//! - **parallel sample sort** (in `parlay::sample_sort`);
//! - **STL sort** — sequential `slice::sort_unstable` and parallel rayon
//!   `par_sort_unstable`, the `std::sort` / GNU-parallel-mode analogues —
//!   [`comparison`];
//! - the **scatter + pack** lower bound, "the minimal work one would need
//!   to do to perform semisorting" (Table 4 / Figure 5) — [`scatter_pack`];
//! - semisort via **naming + Rajasekaran–Reif integer sort**, the §1/§3.2
//!   approach the paper argues is dominated by its preprocessing —
//!   [`mod@rr_semisort`].

#![warn(missing_docs)]

pub mod comparison;
pub mod rr_semisort;
pub mod scatter_pack;
pub mod seq_hash;
pub mod seq_open;
pub mod seq_two_phase;

pub use comparison::{par_sort_semisort, seq_sort_semisort};
pub use rr_semisort::rr_semisort;
pub use scatter_pack::scatter_and_pack;
pub use seq_hash::seq_hash_semisort;
pub use seq_open::seq_open_semisort;
pub use seq_two_phase::seq_two_phase_semisort;
