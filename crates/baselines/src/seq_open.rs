//! Sequential open-addressing semisort with growable per-key buffers.
//!
//! The third §5.4 alternative: "hash tables using open addressing on keys
//! and separate chaining on records with the same key" — here each
//! directory slot owns a growable `Vec` of its key's records (the idiomatic
//! Rust shape of that design). The per-key reallocations are what make it
//! lose to the other sequential variants on duplicate-heavy inputs.

/// Semisort by accumulating each key's records in a per-key vector, then
/// concatenating.
pub fn seq_open_semisort<V: Copy>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = (2 * n).next_power_of_two();
    let mask = cap - 1;
    let mut dir_key: Vec<u64> = vec![0; cap];
    let mut dir_bucket: Vec<Option<Vec<(u64, V)>>> = (0..cap).map(|_| None).collect();
    let mut slots_in_order: Vec<usize> = Vec::new();

    for &(key, value) in records {
        let mut s = (parlay::hash64(key) as usize) & mask;
        loop {
            match &mut dir_bucket[s] {
                None => {
                    dir_key[s] = key;
                    dir_bucket[s] = Some(vec![(key, value)]);
                    slots_in_order.push(s);
                    break;
                }
                Some(bucket) if dir_key[s] == key => {
                    bucket.push((key, value));
                    break;
                }
                Some(_) => s = (s + 1) & mask,
            }
        }
    }

    let mut out: Vec<(u64, V)> = Vec::with_capacity(n);
    for &s in &slots_in_order {
        out.extend_from_slice(dir_bucket[s].as_ref().expect("slot was filled"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn empty_and_single() {
        assert!(seq_open_semisort::<u64>(&[]).is_empty());
        assert_eq!(seq_open_semisort(&[(5u64, 9u64)]), vec![(5, 9)]);
    }

    #[test]
    fn groups_and_stays_stable() {
        let recs = vec![(7u64, 0u64), (3, 1), (7, 2), (3, 3)];
        assert_eq!(
            seq_open_semisort(&recs),
            vec![(7, 0), (7, 2), (3, 1), (3, 3)]
        );
    }

    #[test]
    fn large_mixed_input() {
        let recs: Vec<(u64, u64)> = (0..40_000u64)
            .map(|i| (parlay::hash64(i % 999), i))
            .collect();
        let out = seq_open_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn agrees_with_other_sequential_baselines_as_multiset() {
        let recs: Vec<(u64, u64)> = (0..20_000u64)
            .map(|i| (parlay::hash64(i % 50), i))
            .collect();
        let a = seq_open_semisort(&recs);
        let b = crate::seq_hash_semisort(&recs);
        let c = crate::seq_two_phase_semisort(&recs);
        assert!(is_permutation_of(&a, &b));
        assert!(is_permutation_of(&b, &c));
    }
}
