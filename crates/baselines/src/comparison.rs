//! Comparison-sort baselines (the "STL sort" of §5.5).
//!
//! "We compare our algorithm with two optimized comparison sorts: GNU
//! libstdc++ (STL) parallel sort implemented with OpenMP and sample sort
//! implemented with Cilk Plus in PBBS." Sorting by key is trivially a
//! semisort, so these are drop-in competitors. Rust analogues:
//!
//! - sequential `slice::sort_unstable` (pdqsort — the same introsort family
//!   as `std::sort`);
//! - rayon's `par_sort_unstable` (parallel merge-sort over pdqsort runs —
//!   the GNU-parallel-mode analogue);
//! - the PBBS-style sample sort lives in [`parlay::sample_sort`].

use rayon::slice::ParallelSliceMut;

/// Sequential comparison sort by key (the "STL sort, Seq." column).
pub fn seq_sort_semisort<V: Copy + Send>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let mut out = records.to_vec();
    out.sort_unstable_by_key(|r| r.0);
    out
}

/// Parallel comparison sort by key (the "STL sort, 40h" column).
pub fn par_sort_semisort<V: Copy + Send>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let mut out = records.to_vec();
    out.par_sort_unstable_by_key(|r| r.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn both_produce_sorted_output() {
        let recs: Vec<(u64, u64)> = (0..60_000u64)
            .map(|i| (parlay::hash64(i % 400), i))
            .collect();
        for out in [seq_sort_semisort(&recs), par_sort_semisort(&recs)] {
            assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(is_semisorted_by(&out, |r| r.0));
            assert!(is_permutation_of(&out, &recs));
        }
    }

    #[test]
    fn empty_input() {
        assert!(seq_sort_semisort::<u64>(&[]).is_empty());
        assert!(par_sort_semisort::<u64>(&[]).is_empty());
    }

    #[test]
    fn seq_and_par_agree_on_keys() {
        let recs: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (parlay::hash64(i % 77), i))
            .collect();
        let a: Vec<u64> = seq_sort_semisort(&recs).iter().map(|r| r.0).collect();
        let b: Vec<u64> = par_sort_semisort(&recs).iter().map(|r| r.0).collect();
        assert_eq!(a, b);
    }
}
