//! The sequential chained-hash-table semisort.
//!
//! "Sequential semisorting can be performed by maintaining a hash table in
//! which each entry is a list of records with equal valued keys. The
//! records can then be inserted one at a time." (§1.) This is the
//! comparator of §5.4: the parallel semisort on one thread beats it by
//! ~20% "because the sequential version requires using linked lists to
//! link the elements going to the same bucket, which is not as efficient
//! as estimating sizes and writing directly to an array".
//!
//! Implemented the way a careful C programmer would: open-addressed
//! directory of keys, with per-key singly-linked lists threaded through a
//! preallocated `next[]` array (no per-node allocation), emitted by walking
//! each chain.

/// Semisort `(key, value)` records with a chained hash table. Sequential,
/// linear expected work.
///
/// ```
/// let out = baselines::seq_hash_semisort(&[(7, 0), (3, 1), (7, 2)]);
/// assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
/// ```
pub fn seq_hash_semisort<V: Copy>(records: &[(u64, V)]) -> Vec<(u64, V)> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    // Directory: key → index of the chain head in `records` (usize::MAX = none).
    let cap = (2 * n).next_power_of_two();
    let mask = cap - 1;
    let mut dir_key: Vec<u64> = vec![0; cap];
    let mut dir_head: Vec<usize> = vec![usize::MAX; cap];
    let mut dir_used: Vec<bool> = vec![false; cap];
    // Chains: next[i] = previous record with the same key (usize::MAX = end).
    let mut next: Vec<usize> = vec![usize::MAX; n];
    // Distinct keys in first-seen order, as directory slots.
    let mut slots_in_order: Vec<usize> = Vec::new();

    for (i, &(key, _)) in records.iter().enumerate() {
        let mut s = (parlay::hash64(key) as usize) & mask;
        loop {
            if !dir_used[s] {
                dir_used[s] = true;
                dir_key[s] = key;
                dir_head[s] = i;
                slots_in_order.push(s);
                break;
            }
            if dir_key[s] == key {
                next[i] = dir_head[s];
                dir_head[s] = i;
                break;
            }
            s = (s + 1) & mask;
        }
    }

    // Emit each chain (reversed: chains are LIFO, output order within a key
    // is irrelevant for semisorting).
    let mut out: Vec<(u64, V)> = Vec::with_capacity(n);
    for &s in &slots_in_order {
        let mut i = dir_head[s];
        while i != usize::MAX {
            out.push(records[i]);
            i = next[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semisort::verify::{is_permutation_of, is_semisorted_by};

    #[test]
    fn empty_and_single() {
        assert!(seq_hash_semisort::<u64>(&[]).is_empty());
        assert_eq!(seq_hash_semisort(&[(5u64, 9u64)]), vec![(5, 9)]);
    }

    #[test]
    fn groups_mixed_input() {
        let recs: Vec<(u64, u64)> = (0..50_000u64)
            .map(|i| (parlay::hash64(i % 777), i))
            .collect();
        let out = seq_hash_semisort(&recs);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn all_equal_and_all_distinct() {
        let eq: Vec<(u64, u64)> = (0..10_000u64).map(|i| (42, i)).collect();
        let out = seq_hash_semisort(&eq);
        assert!(is_permutation_of(&out, &eq));
        let di: Vec<(u64, u64)> = (0..10_000u64).map(|i| (parlay::hash64(i), i)).collect();
        let out = seq_hash_semisort(&di);
        assert!(is_semisorted_by(&out, |r| r.0));
        assert!(is_permutation_of(&out, &di));
    }

    #[test]
    fn groups_appear_in_first_seen_order() {
        let recs = vec![(7u64, 0u64), (3, 1), (7, 2), (3, 3), (1, 4)];
        let out = seq_hash_semisort(&recs);
        let first_seen: Vec<u64> = out
            .iter()
            .map(|r| r.0)
            .scan(None, |prev, k| {
                let emit = if *prev != Some(k) { Some(k) } else { None };
                *prev = Some(k);
                Some(emit)
            })
            .flatten()
            .collect();
        assert_eq!(first_seen, vec![7, 3, 1]);
    }
}
