//! Parallel record generation.

use parlay::hash::hash64;
use parlay::random::Rng;
use rayon::prelude::*;

use crate::distributions::Distribution;

/// The paper's 16-byte record: `(hashed key, payload)`.
pub type Record = (u64, u64);

/// Generate `n` records of `dist` deterministically from `seed`.
///
/// Key = `hash64(raw key drawn from dist)`, payload = record index. The
/// hash is bijective, so two records have equal hashed keys iff their raw
/// keys are equal — the "pre-hashed keys" setup of §5.1 with no collision
/// caveats to reason about in tests.
///
/// ```
/// use workloads::{generate, Distribution};
/// let r = generate(Distribution::Uniform { n: 100 }, 1000, 42);
/// assert_eq!(r.len(), 1000);
/// assert_eq!(r, generate(Distribution::Uniform { n: 100 }, 1000, 42));
/// ```
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<Record> {
    let rng = Rng::new(seed);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| (hash64(dist.draw(rng, i as u64)), i as u64))
        .collect()
}

/// Generate just the hashed keys (for key-only baselines like plain sorts).
pub fn generate_keys(dist: Distribution, n: usize, seed: u64) -> Vec<u64> {
    let rng = Rng::new(seed);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| hash64(dist.draw(rng, i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let d = Distribution::Uniform { n: 1000 };
        assert_eq!(generate(d, 10_000, 7), generate(d, 10_000, 7));
        assert_ne!(generate(d, 10_000, 7), generate(d, 10_000, 8));
    }

    #[test]
    fn payloads_are_indices() {
        let d = Distribution::Zipfian { m: 100 };
        let r = generate(d, 5000, 1);
        assert!(r.iter().enumerate().all(|(i, rec)| rec.1 == i as u64));
    }

    #[test]
    fn keys_match_generate_keys() {
        let d = Distribution::Exponential { lambda: 300.0 };
        let recs = generate(d, 20_000, 3);
        let keys = generate_keys(d, 20_000, 3);
        assert!(recs.iter().zip(&keys).all(|(r, &k)| r.0 == k));
    }

    #[test]
    fn duplicate_structure_survives_hashing() {
        // uniform(10) over 100k records: exactly ≤10 distinct hashed keys.
        let d = Distribution::Uniform { n: 10 };
        let r = generate(d, 100_000, 2);
        let mut keys: Vec<u64> = r.iter().map(|x| x.0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() <= 10);
        assert!(
            keys.len() >= 9,
            "with 100k draws all 10 values appear w.h.p."
        );
    }
}
