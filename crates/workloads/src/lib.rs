//! Input workloads from the paper's evaluation (§5.1).
//!
//! "All of our experiments use an 8-byte (64-bit) hash value along with
//! 8-byte payload (16 bytes total per record)." Records here are
//! `(u64, u64)` tuples: hashed key + payload. The payload is the record's
//! original index, which doubles as a permutation witness in tests.
//!
//! Three distribution classes, each with one parameter:
//!
//! - **Uniform(N)** — keys drawn uniformly from `[N]`; smaller `N` means
//!   more duplicates.
//! - **Exponential(λ)** — keys are `⌊Exp(mean λ)⌋`; the head values repeat
//!   heavily, the tail is sparse.
//! - **Zipfian(M)** — key `i ∈ [1, M]` with probability `1/(i·H_M)`.
//!
//! Keys are drawn from the raw distribution and then pushed through the
//! bijective [`parlay::hash64`], matching the paper's "keys have been
//! pre-hashed" setup: the *duplicate structure* comes from the
//! distribution, the *bit pattern* is uniform.

#![warn(missing_docs)]

pub mod arrangement;
pub mod distributions;
pub mod gen;
pub mod paper;

pub use arrangement::Arrangement;
pub use distributions::Distribution;
pub use gen::{generate, generate_keys, Record};
pub use paper::{paper_distributions, representative_distributions, PaperDist};
