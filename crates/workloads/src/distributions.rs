//! The three key distributions of §5.1.

use parlay::random::Rng;

/// Euler–Mascheroni constant, for the harmonic-number approximation.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A key distribution with its parameter, as defined in §5.1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Keys uniform over `[N]`: "each key will be chosen uniformly from the
    /// range `[N]`. Hence, a smaller N will create more equal keys."
    Uniform {
        /// The range `[N]` keys are drawn from.
        n: u64,
    },
    /// Keys `⌊X⌋` for `X ~ Exp(mean λ)`: "the parameter λ … represents the
    /// mean of the distribution, and accordingly, the variance … is λ²."
    Exponential {
        /// The mean λ.
        lambda: f64,
    },
    /// Zipfian over `[M]`: "the i-th number in this range has a probability
    /// 1/(i·M̄) of being chosen, where M̄ = Σ 1/i is the normalizing factor."
    Zipfian {
        /// The range `[M]` keys are drawn from.
        m: u64,
    },
}

impl Distribution {
    /// Draw the i-th raw (un-hashed) key of stream `rng`.
    ///
    /// Pure in `(rng, i)`, so generation parallelizes and reproduces exactly.
    pub fn draw(&self, rng: Rng, i: u64) -> u64 {
        match *self {
            Distribution::Uniform { n } => rng.at_bounded(i, n.max(1)),
            Distribution::Exponential { lambda } => {
                // Inverse CDF: X = −λ·ln(1−U). Clamp U away from 1.
                let u = rng.at_f64(i).min(1.0 - 1e-12);
                (-lambda * (1.0 - u).ln()).floor() as u64
            }
            Distribution::Zipfian { m } => zipf_inverse_cdf(rng.at_f64(i), m),
        }
    }

    /// Human-readable label, e.g. `exp(1e5)` — used in harness output.
    pub fn label(&self) -> String {
        match *self {
            Distribution::Uniform { n } => format!("uniform({})", fmt_param(n)),
            Distribution::Exponential { lambda } => {
                format!("exp({})", fmt_param(lambda as u64))
            }
            Distribution::Zipfian { m } => format!("zipf({})", fmt_param(m)),
        }
    }
}

fn fmt_param(v: u64) -> String {
    if v >= 1_000_000 && v.is_multiple_of(1_000_000) {
        format!("{}M", v / 1_000_000)
    } else if v >= 1_000 && v.is_multiple_of(1_000) {
        format!("{}K", v / 1_000)
    } else {
        v.to_string()
    }
}

/// H_i, the i-th harmonic number. Exact summation below 64 terms, then the
/// asymptotic expansion `ln i + γ + 1/(2i) − 1/(12i²)` (error < 1e-9).
fn harmonic(i: u64) -> f64 {
    debug_assert!(i >= 1);
    if i <= 64 {
        (1..=i).map(|k| 1.0 / k as f64).sum()
    } else {
        let x = i as f64;
        x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Inverse-CDF sample of the Zipf(1) distribution over `[1, m]`, returned
/// 0-based (`0..m`): the smallest `i` with `H_i ≥ u·H_m`, found by binary
/// search over the monotone `harmonic` function. `O(log m)` per draw.
fn zipf_inverse_cdf(u: f64, m: u64) -> u64 {
    let m = m.max(1);
    let target = u * harmonic(m);
    let (mut lo, mut hi) = (1u64, m);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if harmonic(mid) < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range() {
        let d = Distribution::Uniform { n: 100 };
        let rng = Rng::new(1);
        assert!((0..10_000).all(|i| d.draw(rng, i) < 100));
    }

    #[test]
    fn uniform_n1_all_equal() {
        let d = Distribution::Uniform { n: 1 };
        let rng = Rng::new(2);
        assert!((0..1000).all(|i| d.draw(rng, i) == 0));
    }

    #[test]
    fn exponential_mean_close_to_lambda() {
        let d = Distribution::Exponential { lambda: 1000.0 };
        let rng = Rng::new(3);
        let n = 100_000u64;
        let mean = (0..n).map(|i| d.draw(rng, i) as f64).sum::<f64>() / n as f64;
        // floor() biases the mean down by ~0.5; allow 2% tolerance.
        assert!((mean - 1000.0).abs() < 20.0, "mean={mean}");
    }

    #[test]
    fn exponential_head_is_heavy() {
        // For Exp(mean λ), P[X < λ] = 1 − e^{−1} ≈ 0.632.
        let d = Distribution::Exponential { lambda: 500.0 };
        let rng = Rng::new(4);
        let n = 100_000u64;
        let below = (0..n).filter(|&i| (d.draw(rng, i) as f64) < 500.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.632).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn harmonic_matches_exact_small_and_crosses_smoothly() {
        let exact: f64 = (1..=100u64).map(|k| 1.0 / k as f64).sum();
        assert!((harmonic(100) - exact).abs() < 1e-9);
        // Continuity across the 64-term switch.
        assert!(harmonic(65) > harmonic(64));
        assert!((harmonic(64) + 1.0 / 65.0 - harmonic(65)).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank1_frequency_matches_theory() {
        // P[key 0] = 1/H_M.
        let m = 10_000u64;
        let d = Distribution::Zipfian { m };
        let rng = Rng::new(5);
        let n = 200_000u64;
        let hits = (0..n).filter(|&i| d.draw(rng, i) == 0).count();
        let expect = n as f64 / harmonic(m);
        let got = hits as f64;
        assert!(
            (got - expect).abs() < 0.1 * expect + 50.0,
            "got={got} expect={expect}"
        );
    }

    #[test]
    fn zipf_stays_in_range() {
        let d = Distribution::Zipfian { m: 1000 };
        let rng = Rng::new(6);
        assert!((0..50_000).all(|i| d.draw(rng, i) < 1000));
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let m = 1000u64;
        let d = Distribution::Zipfian { m };
        let rng = Rng::new(7);
        let n = 500_000u64;
        let mut counts = vec![0u32; 8];
        for i in 0..n {
            let k = d.draw(rng, i);
            if k < 8 {
                counts[k as usize] += 1;
            }
        }
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "rank frequencies must decrease: {counts:?}");
        }
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            Distribution::Uniform { n: 100_000 }.label(),
            "uniform(100K)"
        );
        assert_eq!(
            Distribution::Exponential {
                lambda: 1_000_000.0
            }
            .label(),
            "exp(1M)"
        );
        assert_eq!(Distribution::Zipfian { m: 10 }.label(), "zipf(10)");
    }
}
