//! The named experiment inputs of §5.
//!
//! Table 1 / Figure 1 use 17 distributions; §5.3–5.5 use two representative
//! ones: "the uniform distribution with parameter N = n (input size), and
//! the exponential distribution with parameter λ = n/10³", chosen because
//! "the first one contains only light keys, and the second distribution
//! contains about 30% light keys and 70% heavy keys".

use crate::distributions::Distribution;

/// One of the paper's named experimental inputs.
#[derive(Clone, Copy, Debug)]
pub struct PaperDist {
    /// The distribution and parameter.
    pub dist: Distribution,
    /// The "% Heavy key records" row of Table 1 (measured on n = 10⁸), for
    /// cross-checking our own measured heavy fractions.
    pub paper_heavy_pct: f64,
}

/// The 17 distributions of Table 1 / Figure 1, in table order.
///
/// Parameters are absolute (the paper ran them at n = 10⁸); at smaller n the
/// duplicate structure shifts accordingly, which EXPERIMENTS.md discusses.
pub fn paper_distributions() -> Vec<PaperDist> {
    let exp = |lambda: f64, pct| PaperDist {
        dist: Distribution::Exponential { lambda },
        paper_heavy_pct: pct,
    };
    let uni = |n: u64, pct| PaperDist {
        dist: Distribution::Uniform { n },
        paper_heavy_pct: pct,
    };
    let zipf = |m: u64, pct| PaperDist {
        dist: Distribution::Zipfian { m },
        paper_heavy_pct: pct,
    };
    vec![
        exp(100.0, 99.97),
        exp(1_000.0, 99.7),
        exp(10_000.0, 97.0),
        exp(100_000.0, 73.0),
        exp(300_000.0, 21.0),
        exp(1_000_000.0, 0.0),
        uni(10, 100.0),
        uni(100_000, 100.0),
        uni(320_000, 75.0),
        uni(500_000, 13.0),
        uni(1_000_000, 0.0),
        uni(100_000_000, 0.0),
        zipf(10_000, 100.0),
        zipf(100_000, 90.0),
        zipf(1_000_000, 74.0),
        zipf(10_000_000, 62.0),
        zipf(100_000_000, 54.0),
    ]
}

/// The two representative §5.3–5.5 distributions for input size `n`:
/// `(exponential(n/10³), uniform(n))`.
pub fn representative_distributions(n: usize) -> (Distribution, Distribution) {
    (
        Distribution::Exponential {
            lambda: n as f64 / 1_000.0,
        },
        Distribution::Uniform { n: n as u64 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_distributions_in_table_order() {
        let d = paper_distributions();
        assert_eq!(d.len(), 17);
        // 6 exponential, 6 uniform, 5 zipfian, grouped.
        let is_exp = |p: &PaperDist| matches!(p.dist, Distribution::Exponential { .. });
        let is_uni = |p: &PaperDist| matches!(p.dist, Distribution::Uniform { .. });
        assert!(d[..6].iter().all(is_exp));
        assert!(d[6..12].iter().all(is_uni));
        assert!(d[12..]
            .iter()
            .all(|p| matches!(p.dist, Distribution::Zipfian { .. })));
    }

    #[test]
    fn heavy_percentages_span_full_range() {
        let d = paper_distributions();
        let max = d.iter().map(|p| p.paper_heavy_pct).fold(0.0, f64::max);
        let min = d.iter().map(|p| p.paper_heavy_pct).fold(100.0, f64::min);
        assert_eq!(max, 100.0);
        assert_eq!(min, 0.0);
    }

    #[test]
    fn representative_matches_paper_rule() {
        let (e, u) = representative_distributions(100_000_000);
        assert_eq!(e, Distribution::Exponential { lambda: 100_000.0 });
        assert_eq!(u, Distribution::Uniform { n: 100_000_000 });
    }
}
