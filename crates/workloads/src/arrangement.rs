//! Input arrangements: the same key multiset, different memory orders.
//!
//! §5.1 fixes the *distribution* of keys; how duplicates are *arranged*
//! also matters in practice (it changes what the strided sampler sees and
//! how branch-predictable the scatter's routing is). These arrangements
//! give the test matrix a second axis.

use parlay::shuffle::random_shuffle;

use crate::gen::Record;

/// How records are laid out in the input array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrangement {
    /// As generated (i.i.d. draws — already random).
    Random,
    /// Sorted ascending by hashed key: equal keys form contiguous runs.
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Equal keys clustered in runs, but runs in random order (the shape of
    /// data that was grouped once and then appended from many sources).
    ClusteredRuns,
}

impl Arrangement {
    /// All arrangements, for test matrices.
    pub fn all() -> [Arrangement; 4] {
        [
            Arrangement::Random,
            Arrangement::Sorted,
            Arrangement::Reversed,
            Arrangement::ClusteredRuns,
        ]
    }

    /// Apply this arrangement to `records` (keeps the multiset intact).
    pub fn apply(&self, records: &mut Vec<Record>, seed: u64) {
        match self {
            Arrangement::Random => {}
            Arrangement::Sorted => {
                parlay::radix_sort::radix_sort_pairs(records);
            }
            Arrangement::Reversed => {
                parlay::radix_sort::radix_sort_pairs(records);
                records.reverse();
            }
            Arrangement::ClusteredRuns => {
                parlay::radix_sort::radix_sort_pairs(records);
                // Identify key runs, then emit the runs in shuffled order.
                let n = records.len();
                if n == 0 {
                    return;
                }
                let starts: Vec<usize> =
                    parlay::pack_index(n, |i| i == 0 || records[i].0 != records[i - 1].0);
                let mut run_ids: Vec<u64> = (0..starts.len() as u64).collect();
                random_shuffle(&mut run_ids, seed);
                let mut out = Vec::with_capacity(n);
                for &r in &run_ids {
                    let r = r as usize;
                    let lo = starts[r];
                    let hi = if r + 1 < starts.len() {
                        starts[r + 1]
                    } else {
                        n
                    };
                    out.extend_from_slice(&records[lo..hi]);
                }
                *records = out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Distribution;
    use crate::gen::generate;

    fn multiset(records: &[Record]) -> Vec<Record> {
        let mut v = records.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn all_arrangements_preserve_the_multiset() {
        let base = generate(Distribution::Zipfian { m: 500 }, 20_000, 3);
        let want = multiset(&base);
        for arr in Arrangement::all() {
            let mut v = base.clone();
            arr.apply(&mut v, 7);
            assert_eq!(multiset(&v), want, "{arr:?} changed the multiset");
        }
    }

    #[test]
    fn sorted_is_sorted_and_reversed_is_reversed() {
        let base = generate(Distribution::Uniform { n: 100 }, 10_000, 1);
        let mut s = base.clone();
        Arrangement::Sorted.apply(&mut s, 0);
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut r = base.clone();
        Arrangement::Reversed.apply(&mut r, 0);
        assert!(r.windows(2).all(|w| w[0].0 >= w[1].0));
    }

    #[test]
    fn clustered_runs_keep_keys_contiguous() {
        let base = generate(Distribution::Uniform { n: 50 }, 10_000, 2);
        let mut c = base.clone();
        Arrangement::ClusteredRuns.apply(&mut c, 5);
        // Every key occupies one contiguous run (it IS a semisorted order).
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for &(k, _) in &c {
            if prev != Some(k) {
                assert!(seen.insert(k), "key {k} split across runs");
                prev = Some(k);
            }
        }
        // But the run order differs from sorted order (with 50 runs the
        // shuffle fixes that with overwhelming probability).
        let mut s = base.clone();
        Arrangement::Sorted.apply(&mut s, 0);
        assert_ne!(c, s, "clustered runs should not be globally sorted");
    }
}
