//! Umbrella crate for the SPAA 2015 "A Top-Down Parallel Semisort"
//! reproduction.
//!
//! This crate hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`). The actual library code lives in the
//! workspace crates, re-exported here for convenience:
//!
//! - [`semisort`] — the paper's contribution: a top-down parallel semisort
//!   with heavy/light key separation (Algorithm 1).
//! - [`parlay`] — the PBBS-style parallel-primitives substrate (prefix sum,
//!   pack, counting sort, radix sort, sample sort, concurrent hash table).
//! - [`baselines`] — sequential semisorts and the comparison/scatter-pack
//!   baselines from the paper's evaluation.
//! - [`workloads`] — the uniform / exponential / Zipfian input generators
//!   used throughout §5.

pub use baselines;
pub use parlay;
pub use semisort;
pub use workloads;
