//! `semisort-cli` — generate, semisort, and verify record files.
//!
//! Records are raw little-endian `(u64 key, u64 payload)` pairs (the
//! paper's 16-byte format).
//!
//! ```sh
//! semisort-cli generate --dist zipf:1000000 --n 5m --out data.bin
//! semisort-cli sort     --input data.bin --out sorted.bin --algo semisort --stats
//! semisort-cli verify   --input sorted.bin
//! semisort-cli bench    --quick --stats-json stats.json
//! semisort-cli trace    --n 1m --out run.trace.json
//! semisort-cli validate-json --input stats.json --schema semisort-stats-v2
//! ```
//!
//! Algorithms: `semisort` (default), `radix`, `sample`, `stdsort`,
//! `seq-hash`, `rr`.
//!
//! `sort` and `bench` accept `--stats-json <path>` (write the run's
//! `semisort-stats-v2` object — see `semisort::stats` for the schema) and
//! `--telemetry <off|counters|deep>`. `bench` additionally appends one
//! JSONL run record to the trajectory file (`BENCH_semisort.json` by
//! default; `--trajectory none` disables). `trace` runs one semisort with
//! scheduler event capture on and writes a Chrome-trace
//! (`semisort-trace-v1`) file for Perfetto. `validate-json` parses a
//! stats, trajectory, trace, or static-analysis report file with the
//! in-tree JSON reader and fails on malformed content (`--schema` accepts
//! a comma-separated list of acceptable names; `--require a.b.c`
//! additionally asserts dotted-path members are present and non-null) —
//! the CI smoke check. Documents declaring `semisort-audit-v1` (the
//! `cargo xtask audit` / `audit-atomics` / `lint` report family) are
//! additionally checked structurally: `passes` entries must carry
//! well-formed violation records and internally-consistent `ok` flags.
//!
//! Failure handling (both `sort --algo semisort` and `bench`):
//! `--on-overflow <fallback|error|panic>` selects the escalation policy,
//! `--max-retries <k>` bounds the Las Vegas restarts, `--max-arena-bytes
//! <bytes>` (k/m/g suffixes ok) caps the scatter arena, and `--fault
//! <spec>` injects deterministic faults (`force-overflow:2`,
//! `corrupt-sample:1,fail-alloc:1`, … — see `semisort::fault`). Under
//! `--on-overflow error` a terminal failure prints one structured
//! `{"event":"error",...}` line (with an `exit_code` member) to stderr
//! and exits with [`semisort::SemisortError::exit_code`]'s mapping
//! (degradable runtime failures 1, invalid config 2, overloaded 3,
//! deadline exceeded 4, cancelled 5, engine poisoned 6).
//!
//! `bench --reuse <k>` runs `k` consecutive calls through one warm
//! [`semisort::Semisorter`] instead of one one-shot call, reporting
//! per-call times and the engine's scratch-pool counters;
//! `--max-scratch-bytes <bytes>` bounds what the pool retains between
//! calls (`sort` and `bench`).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::time::Instant;

use semisort::{
    try_semisort_with_stats, FaultPlan, Json, OverflowPolicy, ScatterConfig, ScatterStrategy,
    SemisortConfig, SemisortError, SemisortStats, Semisorter, TelemetryLevel,
};
use workloads::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit();
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "generate" => generate(&flags),
        "sort" => sort(&flags),
        "verify" => verify(&flags),
        "bench" => bench_run(&flags),
        "trace" => trace_run(&flags),
        "validate-json" => validate_json(&flags),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage:\n  semisort-cli generate --dist <uniform|exp|zipf>:<param> --n <count> --out <file> [--seed <u64>]\n  semisort-cli sort --input <file> --out <file> [--algo semisort|radix|sample|stdsort|seq-hash|rr] [--scatter random-cas|blocked|inplace] [--threads <k>] [--stats] [--stats-json <file>] [--telemetry off|counters|deep] [--on-overflow fallback|error|panic] [--max-retries <k>] [--max-arena-bytes <bytes>] [--max-scratch-bytes <bytes>] [--fault <spec>]\n  semisort-cli verify --input <file>\n  semisort-cli bench [--n <count>] [--dist <spec>] [--quick] [--reuse <k>] [--threads <k>] [--seed <u64>] [--scatter random-cas|blocked|inplace] [--telemetry off|counters|deep] [--stats-json <file>] [--trajectory <file|none>] [--on-overflow fallback|error|panic] [--max-retries <k>] [--max-arena-bytes <bytes>] [--max-scratch-bytes <bytes>] [--fault <spec>]\n  semisort-cli trace [--n <count>] [--dist <spec>] [--seed <u64>] [--threads <k>] [--scatter random-cas|blocked|inplace] [--out <file>] [--stats-json <file>]\n  semisort-cli validate-json --input <file> [--schema <name>[,<name>...]] [--require <path>[,<path>...]] [--jsonl]"
    );
    std::process::exit(2);
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn require(&self, name: &str) -> &str {
        self.get(name).unwrap_or_else(|| {
            eprintln!("missing required flag --{name}");
            std::process::exit(2);
        })
    }
    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a}");
            std::process::exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(), // boolean flag
        };
        out.push((name.to_string(), value));
    }
    Flags(out)
}

fn parse_count(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (head, mult) = match lower.chars().last() {
        Some('k') => (&lower[..lower.len() - 1], 1_000f64),
        Some('m') => (&lower[..lower.len() - 1], 1_000_000f64),
        Some('g') => (&lower[..lower.len() - 1], 1_000_000_000f64),
        _ => (lower.as_str(), 1f64),
    };
    (head.parse::<f64>().expect("bad count") * mult) as usize
}

fn parse_dist(s: &str) -> Distribution {
    let (kind, param) = s.split_once(':').unwrap_or_else(|| {
        eprintln!("--dist must look like uniform:1000000");
        std::process::exit(2);
    });
    let p: f64 = param.parse().expect("bad distribution parameter");
    match kind {
        "uniform" => Distribution::Uniform { n: p as u64 },
        "exp" | "exponential" => Distribution::Exponential { lambda: p },
        "zipf" | "zipfian" => Distribution::Zipfian { m: p as u64 },
        _ => {
            eprintln!("unknown distribution {kind}");
            std::process::exit(2);
        }
    }
}

fn read_records(path: &str) -> Vec<(u64, u64)> {
    let f = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut r = BufReader::new(f);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).expect("read failed");
    assert!(
        bytes.len() % 16 == 0,
        "file is not a whole number of 16-byte records"
    );
    bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect()
}

fn write_records(path: &str, records: &[(u64, u64)]) {
    let f = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    let mut w = BufWriter::new(f);
    for &(k, v) in records {
        w.write_all(&k.to_le_bytes()).expect("write failed");
        w.write_all(&v.to_le_bytes()).expect("write failed");
    }
    w.flush().expect("flush failed");
}

fn generate(flags: &Flags) {
    let dist = parse_dist(flags.require("dist"));
    let n = parse_count(flags.require("n"));
    let seed: u64 = flags
        .get("seed")
        .map_or(42, |s| s.parse().expect("bad seed"));
    let out = flags.require("out");
    let t = Instant::now();
    let records = workloads::generate(dist, n, seed);
    write_records(out, &records);
    eprintln!(
        "generated {} records of {} into {out} in {:.2}s",
        n,
        dist.label(),
        t.elapsed().as_secs_f64()
    );
}

/// Parse `--scatter` (default `random-cas`).
fn parse_scatter(flags: &Flags) -> ScatterStrategy {
    match flags.get("scatter").unwrap_or("random-cas") {
        "random-cas" | "cas" => ScatterStrategy::RandomCas,
        "blocked" => ScatterStrategy::Blocked,
        "inplace" | "in-place" => ScatterStrategy::InPlace,
        other => {
            eprintln!("unknown scatter strategy {other} (want random-cas, blocked or inplace)");
            std::process::exit(2);
        }
    }
}

/// Apply the failure-handling flags — `--on-overflow`, `--max-retries`,
/// `--max-arena-bytes`, `--fault` — on top of a config.
fn apply_failure_flags(flags: &Flags, mut cfg: SemisortConfig) -> SemisortConfig {
    if let Some(s) = flags.get("on-overflow") {
        cfg.overflow_policy = OverflowPolicy::parse(s).unwrap_or_else(|| {
            eprintln!("unknown overflow policy {s} (want fallback, error or panic)");
            std::process::exit(2);
        });
    }
    if let Some(s) = flags.get("max-retries") {
        cfg.max_retries = s.parse().expect("bad retry count");
    }
    if let Some(s) = flags.get("max-arena-bytes") {
        cfg.max_arena_bytes = parse_count(s);
    }
    if let Some(s) = flags.get("max-scratch-bytes") {
        cfg.max_scratch_bytes = parse_count(s);
    }
    if let Some(s) = flags.get("fault") {
        cfg.fault = FaultPlan::parse(s).unwrap_or_else(|e| {
            eprintln!("bad --fault spec: {e}");
            std::process::exit(2);
        });
    }
    cfg
}

/// Run the semisort, exiting with a structured one-line JSON error on a
/// terminal failure (only reachable under `--on-overflow error`).
fn run_or_exit(records: &[(u64, u64)], cfg: &SemisortConfig) -> (Vec<(u64, u64)>, SemisortStats) {
    try_semisort_with_stats(records, cfg).unwrap_or_else(|e| exit_semisort_error(e))
}

fn exit_semisort_error(e: SemisortError) -> ! {
    let line = Json::Obj(vec![
        ("event".into(), Json::str("error")),
        ("kind".into(), Json::str(e.kind())),
        ("exit_code".into(), Json::num(e.exit_code() as u64)),
        ("message".into(), Json::Str(e.to_string())),
    ]);
    eprintln!("{line}");
    std::process::exit(e.exit_code());
}

/// Parse `--telemetry` (default `off`).
fn parse_telemetry(flags: &Flags) -> TelemetryLevel {
    let s = flags.get("telemetry").unwrap_or("off");
    TelemetryLevel::parse(s).unwrap_or_else(|| {
        eprintln!("unknown telemetry level {s} (want off, counters or deep)");
        std::process::exit(2);
    })
}

/// Print the verbose `--stats` report for one run to stderr.
fn print_stats(stats: &semisort::SemisortStats, scatter: ScatterStrategy) {
    for (name, d) in stats.phases() {
        eprintln!("  {name:<18} {:.4}s", d.as_secs_f64());
    }
    eprintln!(
        "  heavy keys {} | light buckets {} | %heavy {:.1} | slots/n {:.2} | retries {}",
        stats.heavy_keys,
        stats.light_buckets,
        stats.heavy_fraction_pct(),
        stats.space_blowup(),
        stats.retries
    );
    if stats.degraded {
        eprintln!(
            "  DEGRADED to comparison-sort fallback: {}",
            stats.degrade_reason.map_or("unknown", |r| r.as_str())
        );
    }
    if scatter == ScatterStrategy::Blocked {
        eprintln!(
            "  blocks flushed {} | slab overflows {} | fallback records {}",
            stats.blocks_flushed, stats.slab_overflows, stats.fallback_records
        );
    }
    if scatter == ScatterStrategy::InPlace {
        eprintln!(
            "  inplace cycles {} | swap buffer flushes {}",
            stats.inplace_cycles, stats.swap_buffer_flushes
        );
    }
    for rc in &stats.telemetry.retry_causes {
        eprintln!(
            "  retry {}: {} bucket {} overflowed — allocated {} slots, observed ≥ {} records",
            rc.attempt,
            if rc.heavy { "heavy" } else { "light" },
            rc.bucket,
            rc.allocated,
            rc.observed
        );
    }
    if stats.telemetry.level.counters() {
        eprintln!(
            "  cas attempts {} | cas failures {} | records placed {}",
            stats.telemetry.cas_attempts,
            stats.telemetry.cas_failures,
            stats.telemetry.records_placed
        );
    }
}

/// Write a run's `semisort-stats-v2` object to `path`.
fn write_stats_json(path: &str, stats: &semisort::SemisortStats) {
    let json = stats.to_json();
    if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("stats JSON → {path}");
}

fn sort(flags: &Flags) {
    let input = flags.require("input");
    let out_path = flags.require("out");
    let algo = flags.get("algo").unwrap_or("semisort");
    let records = read_records(input);
    eprintln!("read {} records from {input}", records.len());

    let scatter = parse_scatter(flags);
    let telemetry = parse_telemetry(flags);
    if flags.has("stats-json") && algo != "semisort" {
        eprintln!("--stats-json only applies to --algo semisort");
        std::process::exit(2);
    }

    let run = || -> Vec<(u64, u64)> {
        match algo {
            "semisort" => {
                let cfg = apply_failure_flags(
                    flags,
                    SemisortConfig {
                        scatter: ScatterConfig {
                            strategy: scatter,
                            ..ScatterConfig::default()
                        },
                        telemetry,
                        ..Default::default()
                    },
                );
                let (out, stats) = run_or_exit(&records, &cfg);
                if flags.has("stats") {
                    print_stats(&stats, scatter);
                }
                if let Some(path) = flags.get("stats-json") {
                    write_stats_json(path, &stats);
                }
                out
            }
            "radix" => {
                let mut v = records.clone();
                parlay::radix_sort::radix_sort_pairs(&mut v);
                v
            }
            "sample" => {
                let mut v = records.clone();
                parlay::sample_sort::sample_sort_pairs(&mut v);
                v
            }
            "stdsort" => baselines::par_sort_semisort(&records),
            "seq-hash" => baselines::seq_hash_semisort(&records),
            "rr" => baselines::rr_semisort(&records).0,
            _ => {
                eprintln!("unknown algorithm {algo}");
                std::process::exit(2);
            }
        }
    };

    let t = Instant::now();
    let sorted = match flags.get("threads") {
        Some(k) => parlay::with_threads(k.parse().expect("bad thread count"), run),
        None => run(),
    };
    let dt = t.elapsed().as_secs_f64();
    write_records(out_path, &sorted);
    eprintln!(
        "{algo}: {} records in {dt:.3}s ({:.1} Mrec/s) → {out_path}",
        sorted.len(),
        sorted.len() as f64 / dt / 1e6
    );
}

/// `bench`: generate a workload in memory, run the semisort once, verify
/// the output, and emit stats JSON + one trajectory run record.
fn bench_run(flags: &Flags) {
    let quick = flags.has("quick");
    let mut n = flags.get("n").map_or(1_000_000, parse_count);
    if quick {
        n = n.min(200_000);
    }
    let seed: u64 = flags
        .get("seed")
        .map_or(42, |s| s.parse().expect("bad seed"));
    let dist = flags
        .get("dist")
        .map(parse_dist)
        .unwrap_or(Distribution::Zipfian {
            m: (n as u64 / 10).max(1),
        });
    let cfg = apply_failure_flags(
        flags,
        SemisortConfig {
            scatter: ScatterConfig {
                strategy: parse_scatter(flags),
                ..ScatterConfig::default()
            },
            telemetry: parse_telemetry(flags),
            ..SemisortConfig::default().with_seed(seed)
        },
    );
    let threads = flags
        .get("threads")
        .map(|k| k.parse::<usize>().expect("bad thread count"));
    let threads_requested =
        threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));

    let reuse: usize = flags
        .get("reuse")
        .map_or(1, |s| s.parse().expect("bad --reuse count"))
        .max(1);

    let records = workloads::generate(dist, n, seed);
    let t = Instant::now();
    let run = || {
        if reuse > 1 {
            // Warm-engine mode: `reuse` consecutive calls through one
            // Semisorter; report the last call (whose scratch counters
            // show the steady-state pool behavior).
            let mut engine = Semisorter::new(cfg).unwrap_or_else(|e| exit_semisort_error(e));
            let mut out = Vec::new();
            for call in 0..reuse {
                out = engine
                    .sort_pairs(&records)
                    .unwrap_or_else(|e| exit_semisort_error(e));
                if call > 0 {
                    eprintln!(
                        "  call {call}: scratch_grows {} reuse_hits {} held {} bytes",
                        engine.last_stats().scratch_grows,
                        engine.last_stats().scratch_reuse_hits,
                        engine.last_stats().scratch_bytes_held,
                    );
                }
            }
            let stats = engine.last_stats().clone();
            (out, stats, bench::trajectory::effective_threads())
        } else {
            let (out, stats) = run_or_exit(&records, &cfg);
            (out, stats, bench::trajectory::effective_threads())
        }
    };
    let (out, stats, threads_effective) = match threads {
        Some(k) => parlay::with_threads(k, run),
        None => run(),
    };
    let wall = t.elapsed().as_secs_f64() / reuse as f64;
    assert!(
        semisort::verify::is_semisorted_by(&out, |r| r.0) && out.len() == records.len(),
        "bench run produced an invalid semisort"
    );
    eprintln!(
        "bench: {} records of {} in {wall:.3}s{} ({:.1} Mrec/s), telemetry {}",
        n,
        dist.label(),
        if reuse > 1 {
            format!("/call over {reuse} warm-engine calls")
        } else {
            String::new()
        },
        n as f64 / wall / 1e6,
        cfg.telemetry.as_str()
    );
    if flags.has("stats") {
        print_stats(&stats, cfg.scatter.strategy);
    }
    if let Some(path) = flags.get("stats-json") {
        write_stats_json(path, &stats);
    }
    let trajectory = flags
        .get("trajectory")
        .unwrap_or(bench::trajectory::DEFAULT_TRAJECTORY);
    bench::trajectory::append_line(
        trajectory,
        &bench::trajectory::run_record(
            "semisort-cli",
            threads_requested,
            threads_effective,
            wall,
            stats.to_json(),
        ),
    );
    if trajectory != "none" {
        eprintln!("trajectory record → {trajectory}");
    }
}

/// `trace`: run one semisort with scheduler event capture switched on and
/// export the run as a Chrome-trace file (`semisort-trace-v1`) loadable in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
fn trace_run(flags: &Flags) {
    let n = flags.get("n").map_or(1_000_000, parse_count);
    let seed: u64 = flags
        .get("seed")
        .map_or(42, |s| s.parse().expect("bad seed"));
    let dist = flags
        .get("dist")
        .map(parse_dist)
        .unwrap_or(Distribution::Zipfian {
            m: (n as u64 / 10).max(1),
        });
    let cfg = apply_failure_flags(
        flags,
        SemisortConfig {
            scatter: ScatterConfig {
                strategy: parse_scatter(flags),
                ..ScatterConfig::default()
            },
            telemetry: parse_telemetry(flags),
            ..SemisortConfig::default().with_seed(seed)
        },
    );
    // Scheduler rings only exist on a multi-worker pool; when the machine
    // reports one hardware thread, still trace on two workers so the
    // timeline has scheduler rows (concurrency, if not parallelism).
    let threads = flags.get("threads").map_or_else(
        || {
            std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .max(2)
        },
        |k| k.parse().expect("bad thread count"),
    );
    let out_path = flags.get("out").unwrap_or("semisort.trace.json");

    let records = workloads::generate(dist, n, seed);
    rayon::trace::set_events_enabled(true);
    let (out, stats) = parlay::with_threads(threads, || run_or_exit(&records, &cfg));
    rayon::trace::set_events_enabled(false);
    assert!(
        semisort::verify::is_semisorted_by(&out, |r| r.0) && out.len() == records.len(),
        "trace run produced an invalid semisort"
    );

    let doc = semisort::chrome_trace(&stats);
    if let Err(e) = std::fs::write(out_path, format!("{doc}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    if let Some(path) = flags.get("stats-json") {
        write_stats_json(path, &stats);
    }
    let sched_events = stats.scheduler.as_ref().map_or(0, |s| s.events().count());
    eprintln!(
        "trace: {} records of {} on {threads} threads → {out_path} \
         ({} spans, {sched_events} scheduler events); open in https://ui.perfetto.dev",
        n,
        dist.label(),
        stats.spans.len()
    );
}

/// `validate-json`: parse a stats, trajectory, or trace file with the
/// in-tree JSON reader; non-zero exit on malformed content or a schema
/// mismatch. `--schema` takes a comma-separated list of acceptable names
/// (e.g. `semisort-stats-v1,semisort-stats-v2` across a schema bump).
fn validate_json(flags: &Flags) {
    let input = flags.require("input");
    let text = std::fs::read_to_string(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        std::process::exit(1);
    });
    let jsonl = flags.has("jsonl");
    let want_schemas: Option<Vec<&str>> = flags.get("schema").map(|s| {
        s.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect()
    });
    // `--require a.b.c[,x.y]`: each dotted path must resolve to a non-null
    // member (e.g. `service.admitted` asserts a stats file came from a
    // service run).
    let required_paths: Vec<&str> = flags
        .get("require")
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let check = |chunk: &str, what: &str| {
        let parsed = Json::parse(chunk).unwrap_or_else(|e| {
            eprintln!("{input}: {what}: malformed JSON: {e}");
            std::process::exit(1);
        });
        if let Some(want) = &want_schemas {
            let got = parsed.get("schema").and_then(Json::as_str);
            if !got.is_some_and(|g| want.contains(&g)) {
                eprintln!("{input}: {what}: schema {got:?}, expected one of {want:?}");
                std::process::exit(1);
            }
        }
        // Known schemas get structural validation on top of the name
        // match: a report that *says* audit-v1 must also be shaped like
        // one, so CI archives can be trusted downstream.
        if parsed.get("schema").and_then(Json::as_str) == Some("semisort-audit-v1") {
            if let Err(msg) = audit_v1_shape(&parsed) {
                eprintln!("{input}: {what}: not a well-formed semisort-audit-v1 report: {msg}");
                std::process::exit(1);
            }
        }
        for path in &required_paths {
            let mut node = Some(&parsed);
            for seg in path.split('.') {
                node = node.and_then(|n| n.get(seg));
            }
            match node {
                Some(Json::Null) | None => {
                    eprintln!("{input}: {what}: required member `{path}` is missing or null");
                    std::process::exit(1);
                }
                Some(_) => {}
            }
        }
    };
    let count = if jsonl {
        let mut count = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            check(line, &format!("line {}", i + 1));
            count += 1;
        }
        count
    } else {
        check(&text, "document");
        1
    };
    if count == 0 {
        eprintln!("{input}: no records");
        std::process::exit(1);
    }
    println!(
        "{input}: OK ({count} record{})",
        if count == 1 { "" } else { "s" }
    );
}

/// Structural check of a `semisort-audit-v1` document (the `cargo xtask
/// audit`/`audit-atomics` report; `lint` emits the same violation objects
/// under `semisort-lint-v1`): a top-level `ok` bool and `passes` array;
/// each pass carries `pass`, `ok`, `files_scanned`, and well-formed
/// `violations` (rule/file/line/message); and every `ok` flag must agree
/// with the violations it summarizes.
fn audit_v1_shape(doc: &Json) -> Result<(), String> {
    let doc_ok = doc
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("missing top-level `ok` bool")?;
    let passes = doc
        .get("passes")
        .and_then(Json::as_arr)
        .ok_or("missing `passes` array")?;
    let mut all_clean = true;
    for (i, pass) in passes.iter().enumerate() {
        let name = pass
            .get("pass")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("passes[{i}] has no `pass` name"))?;
        let pass_ok = pass
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("pass `{name}` has no `ok` bool"))?;
        pass.get("files_scanned")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("pass `{name}` has no `files_scanned` count"))?;
        let violations = pass
            .get("violations")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("pass `{name}` has no `violations` array"))?;
        for (j, v) in violations.iter().enumerate() {
            for key in ["rule", "file", "message"] {
                if v.get(key).and_then(Json::as_str).is_none() {
                    return Err(format!("pass `{name}` violations[{j}] missing `{key}`"));
                }
            }
            if v.get("line").and_then(Json::as_u64).is_none() {
                return Err(format!("pass `{name}` violations[{j}] missing `line`"));
            }
        }
        if pass_ok != violations.is_empty() {
            return Err(format!(
                "pass `{name}` ok={pass_ok} disagrees with its {} violation(s)",
                violations.len()
            ));
        }
        all_clean &= pass_ok;
    }
    if doc_ok != all_clean {
        return Err(format!(
            "top-level ok={doc_ok} disagrees with the pass results"
        ));
    }
    Ok(())
}

fn verify(flags: &Flags) {
    let input = flags.require("input");
    let records = read_records(input);
    let ok = semisort::verify::is_semisorted_by(&records, |r| r.0);
    let distinct = {
        let mut keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    println!(
        "{input}: {} records, {distinct} distinct keys — {}",
        records.len(),
        if ok { "SEMISORTED" } else { "NOT semisorted" }
    );
    if !ok {
        std::process::exit(1);
    }
}
