//! `semisort-cli` — generate, semisort, and verify record files.
//!
//! Records are raw little-endian `(u64 key, u64 payload)` pairs (the
//! paper's 16-byte format).
//!
//! ```sh
//! semisort-cli generate --dist zipf:1000000 --n 5m --out data.bin
//! semisort-cli sort     --input data.bin --out sorted.bin --algo semisort --stats
//! semisort-cli verify   --input sorted.bin
//! ```
//!
//! Algorithms: `semisort` (default), `radix`, `sample`, `stdsort`,
//! `seq-hash`, `rr`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::time::Instant;

use semisort::{semisort_with_stats, ScatterStrategy, SemisortConfig};
use workloads::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit();
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "generate" => generate(&flags),
        "sort" => sort(&flags),
        "verify" => verify(&flags),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage:\n  semisort-cli generate --dist <uniform|exp|zipf>:<param> --n <count> --out <file> [--seed <u64>]\n  semisort-cli sort --input <file> --out <file> [--algo semisort|radix|sample|stdsort|seq-hash|rr] [--scatter random-cas|blocked] [--threads <k>] [--stats]\n  semisort-cli verify --input <file>"
    );
    std::process::exit(2);
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
    fn require(&self, name: &str) -> &str {
        self.get(name).unwrap_or_else(|| {
            eprintln!("missing required flag --{name}");
            std::process::exit(2);
        })
    }
    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a}");
            std::process::exit(2);
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(), // boolean flag
        };
        out.push((name.to_string(), value));
    }
    Flags(out)
}

fn parse_count(s: &str) -> usize {
    let lower = s.to_ascii_lowercase();
    let (head, mult) = match lower.chars().last() {
        Some('k') => (&lower[..lower.len() - 1], 1_000f64),
        Some('m') => (&lower[..lower.len() - 1], 1_000_000f64),
        Some('g') => (&lower[..lower.len() - 1], 1_000_000_000f64),
        _ => (lower.as_str(), 1f64),
    };
    (head.parse::<f64>().expect("bad count") * mult) as usize
}

fn parse_dist(s: &str) -> Distribution {
    let (kind, param) = s.split_once(':').unwrap_or_else(|| {
        eprintln!("--dist must look like uniform:1000000");
        std::process::exit(2);
    });
    let p: f64 = param.parse().expect("bad distribution parameter");
    match kind {
        "uniform" => Distribution::Uniform { n: p as u64 },
        "exp" | "exponential" => Distribution::Exponential { lambda: p },
        "zipf" | "zipfian" => Distribution::Zipfian { m: p as u64 },
        _ => {
            eprintln!("unknown distribution {kind}");
            std::process::exit(2);
        }
    }
}

fn read_records(path: &str) -> Vec<(u64, u64)> {
    let f = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut r = BufReader::new(f);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).expect("read failed");
    assert!(
        bytes.len() % 16 == 0,
        "file is not a whole number of 16-byte records"
    );
    bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..].try_into().unwrap()),
            )
        })
        .collect()
}

fn write_records(path: &str, records: &[(u64, u64)]) {
    let f = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    let mut w = BufWriter::new(f);
    for &(k, v) in records {
        w.write_all(&k.to_le_bytes()).expect("write failed");
        w.write_all(&v.to_le_bytes()).expect("write failed");
    }
    w.flush().expect("flush failed");
}

fn generate(flags: &Flags) {
    let dist = parse_dist(flags.require("dist"));
    let n = parse_count(flags.require("n"));
    let seed: u64 = flags
        .get("seed")
        .map_or(42, |s| s.parse().expect("bad seed"));
    let out = flags.require("out");
    let t = Instant::now();
    let records = workloads::generate(dist, n, seed);
    write_records(out, &records);
    eprintln!(
        "generated {} records of {} into {out} in {:.2}s",
        n,
        dist.label(),
        t.elapsed().as_secs_f64()
    );
}

fn sort(flags: &Flags) {
    let input = flags.require("input");
    let out_path = flags.require("out");
    let algo = flags.get("algo").unwrap_or("semisort");
    let records = read_records(input);
    eprintln!("read {} records from {input}", records.len());

    let scatter = match flags.get("scatter").unwrap_or("random-cas") {
        "random-cas" | "cas" => ScatterStrategy::RandomCas,
        "blocked" => ScatterStrategy::Blocked,
        other => {
            eprintln!("unknown scatter strategy {other} (want random-cas or blocked)");
            std::process::exit(2);
        }
    };

    let run = || -> Vec<(u64, u64)> {
        match algo {
            "semisort" => {
                let cfg = SemisortConfig {
                    scatter_strategy: scatter,
                    ..Default::default()
                };
                let (out, stats) = semisort_with_stats(&records, &cfg);
                if flags.has("stats") {
                    for (name, d) in stats.phases() {
                        eprintln!("  {name:<18} {:.4}s", d.as_secs_f64());
                    }
                    eprintln!(
                        "  heavy keys {} | light buckets {} | %heavy {:.1} | slots/n {:.2} | retries {}",
                        stats.heavy_keys,
                        stats.light_buckets,
                        stats.heavy_fraction_pct(),
                        stats.space_blowup(),
                        stats.retries
                    );
                    if scatter == ScatterStrategy::Blocked {
                        eprintln!(
                            "  blocks flushed {} | slab overflows {} | fallback records {}",
                            stats.blocks_flushed, stats.slab_overflows, stats.fallback_records
                        );
                    }
                }
                out
            }
            "radix" => {
                let mut v = records.clone();
                parlay::radix_sort::radix_sort_pairs(&mut v);
                v
            }
            "sample" => {
                let mut v = records.clone();
                parlay::sample_sort::sample_sort_pairs(&mut v);
                v
            }
            "stdsort" => baselines::par_sort_semisort(&records),
            "seq-hash" => baselines::seq_hash_semisort(&records),
            "rr" => baselines::rr_semisort(&records).0,
            _ => {
                eprintln!("unknown algorithm {algo}");
                std::process::exit(2);
            }
        }
    };

    let t = Instant::now();
    let sorted = match flags.get("threads") {
        Some(k) => parlay::with_threads(k.parse().expect("bad thread count"), run),
        None => run(),
    };
    let dt = t.elapsed().as_secs_f64();
    write_records(out_path, &sorted);
    eprintln!(
        "{algo}: {} records in {dt:.3}s ({:.1} Mrec/s) → {out_path}",
        sorted.len(),
        sorted.len() as f64 / dt / 1e6
    );
}

fn verify(flags: &Flags) {
    let input = flags.require("input");
    let records = read_records(input);
    let ok = semisort::verify::is_semisorted_by(&records, |r| r.0);
    let distinct = {
        let mut keys: Vec<u64> = records.iter().map(|r| r.0).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    println!(
        "{input}: {} records, {distinct} distinct keys — {}",
        records.len(),
        if ok { "SEMISORTED" } else { "NOT semisorted" }
    );
    if !ok {
        std::process::exit(1);
    }
}
