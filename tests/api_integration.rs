//! End-to-end tests of the public API against independent references.

use std::collections::HashMap;

use semisort::{
    try_count_by_key, try_group_by, try_reduce_by_key, try_semisort_by_key, SemisortConfig,
};

fn cfg() -> SemisortConfig {
    SemisortConfig {
        seq_threshold: 128,
        ..Default::default()
    }
}

#[test]
fn wordcount_matches_hashmap() {
    let words: Vec<String> = (0..50_000)
        .map(|i| format!("w{}", parlay::hash64(i) % 500))
        .collect();
    let counts = try_count_by_key(&words, |w| w.clone(), &cfg()).unwrap();
    let mut reference: HashMap<String, usize> = HashMap::new();
    for w in &words {
        *reference.entry(w.clone()).or_default() += 1;
    }
    assert_eq!(counts.len(), reference.len());
    for (w, c) in counts {
        assert_eq!(reference[&w], c);
    }
}

#[test]
fn reduce_by_key_max_per_group() {
    let pairs: Vec<(u16, i64)> = (0..40_000i64)
        .map(|i| ((i % 97) as u16, (i * 31) % 10_007))
        .collect();
    let maxes = try_reduce_by_key(&pairs, |p| p.0, i64::MIN, |a, p| a.max(p.1), &cfg()).unwrap();
    assert_eq!(maxes.len(), 97);
    let mut reference: HashMap<u16, i64> = HashMap::new();
    for (k, v) in &pairs {
        let e = reference.entry(*k).or_insert(i64::MIN);
        *e = (*e).max(*v);
    }
    for (k, m) in maxes {
        assert_eq!(reference[&k], m, "max for key {k}");
    }
}

#[test]
fn semisort_tuples_with_composite_keys() {
    let items: Vec<((u8, u8), u32)> = (0..30_000u32)
        .map(|i| (((i % 13) as u8, (i % 7) as u8), i))
        .collect();
    let out = try_semisort_by_key(&items, |t| t.0, &cfg()).unwrap();
    assert_eq!(out.len(), items.len());
    assert!(semisort::verify::is_semisorted_by(&out, |t| t.0));
    // 13 × 7 = 91 composite groups.
    let groups = try_group_by(&items, |t| t.0, &cfg()).unwrap();
    assert_eq!(groups.len(), 91);
}

#[test]
fn group_by_singleton_groups() {
    // All-distinct keys: every group has size 1.
    let items: Vec<u64> = (0..20_000).map(parlay::hash64).collect();
    let groups = try_group_by(&items, |&x| x, &cfg()).unwrap();
    assert_eq!(groups.len(), items.len());
    assert!(groups.iter().all(|g| g.len() == 1));
}

#[test]
fn group_by_one_giant_group() {
    let items = vec![5u8; 30_000];
    let groups = try_group_by(&items, |&x| x, &cfg()).unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups.group(0).len(), 30_000);
}

#[test]
fn works_inside_caller_provided_pool() {
    // Users commonly run inside their own rayon pool; the semisort must not
    // deadlock or misbehave there.
    let items: Vec<u32> = (0..60_000).map(|i| i % 1000).collect();
    let counts = parlay::with_threads(2, || try_count_by_key(&items, |&x| x, &cfg()).unwrap());
    assert_eq!(counts.len(), 1000);
    assert!(counts.iter().all(|&(_, c)| c == 60));
}

#[test]
fn large_values_are_carried_intact() {
    // 32-byte payloads: the scatter's value cells are generic, not u64-only.
    #[derive(Clone, Copy, PartialEq, Debug)]
    struct Big([u64; 4]);
    let recs: Vec<(u64, Big)> = (0..20_000u64)
        .map(|i| (parlay::hash64(i % 100), Big([i, i + 1, i + 2, i + 3])))
        .collect();
    let out = semisort::try_semisort_core(&recs, &cfg()).unwrap();
    assert_eq!(out.len(), recs.len());
    assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
    for (k, b) in &out {
        assert_eq!(b.0[1], b.0[0] + 1);
        assert_eq!(*k, parlay::hash64(b.0[0] % 100));
    }
}
