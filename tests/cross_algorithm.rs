//! Cross-algorithm agreement: every semisort implementation in the
//! workspace — the paper's parallel algorithm, the three sequential
//! baselines, and the sort-based ones — must produce a semisorted
//! permutation of the same input, on every §5.1 distribution.

use baselines::{
    par_sort_semisort, seq_hash_semisort, seq_open_semisort, seq_sort_semisort,
    seq_two_phase_semisort,
};
use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, paper_distributions, Distribution};

const N: usize = 30_000;

type Algorithm = fn(&[(u64, u64)]) -> Vec<(u64, u64)>;

fn all_algorithms() -> Vec<(&'static str, Algorithm)> {
    fn semi(r: &[(u64, u64)]) -> Vec<(u64, u64)> {
        try_semisort_pairs(r, &SemisortConfig::default()).unwrap()
    }
    fn rr(r: &[(u64, u64)]) -> Vec<(u64, u64)> {
        baselines::rr_semisort(r).0
    }
    vec![
        ("parallel semisort", semi),
        ("seq chained hash", seq_hash_semisort::<u64>),
        ("seq open addressing", seq_open_semisort::<u64>),
        ("seq two-phase", seq_two_phase_semisort::<u64>),
        ("seq sort", seq_sort_semisort::<u64>),
        ("par sort", par_sort_semisort::<u64>),
        ("naming + RR integer sort", rr),
    ]
}

#[test]
fn all_algorithms_agree_on_all_17_paper_distributions() {
    for pd in paper_distributions() {
        let records = generate(pd.dist, N, 7);
        for (name, algo) in all_algorithms() {
            let out = algo(&records);
            assert!(
                is_semisorted_by(&out, |r| r.0),
                "{name} output not semisorted on {}",
                pd.dist.label()
            );
            assert!(
                is_permutation_of(&out, &records),
                "{name} output not a permutation on {}",
                pd.dist.label()
            );
        }
    }
}

#[test]
fn group_multiset_identical_across_algorithms() {
    // Beyond being valid semisorts, all algorithms must induce the *same*
    // group structure: per key, the same payload multiset.
    let records = generate(Distribution::Zipfian { m: 5_000 }, N, 13);
    let reference = group_map(&seq_hash_semisort(&records));
    for (name, algo) in all_algorithms() {
        assert_eq!(
            group_map(&algo(&records)),
            reference,
            "{name} grouped differently"
        );
    }
}

fn group_map(out: &[(u64, u64)]) -> std::collections::BTreeMap<u64, Vec<u64>> {
    let mut m: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for &(k, v) in out {
        m.entry(k).or_default().push(v);
    }
    for v in m.values_mut() {
        v.sort_unstable();
    }
    m
}

#[test]
fn parallel_sorts_agree_with_std_sort() {
    let records = generate(Distribution::Exponential { lambda: 300.0 }, N, 3);
    let mut want = records.clone();
    want.sort_unstable();

    let mut radix = records.clone();
    parlay::radix_sort::radix_sort_pairs(&mut radix);
    let radix_keys: Vec<u64> = radix.iter().map(|r| r.0).collect();
    let want_keys: Vec<u64> = want.iter().map(|r| r.0).collect();
    assert_eq!(radix_keys, want_keys);

    let mut sample = records.clone();
    parlay::sample_sort::sample_sort_pairs(&mut sample);
    let sample_keys: Vec<u64> = sample.iter().map(|r| r.0).collect();
    assert_eq!(sample_keys, want_keys);
}

#[test]
fn scatter_pack_baseline_is_a_permutation_on_every_distribution() {
    for pd in paper_distributions().iter().take(6) {
        let records = generate(pd.dist, N, 5);
        let (out, timing) = baselines::scatter_and_pack(&records, 11);
        assert!(is_permutation_of(&out, &records), "{}", pd.dist.label());
        assert!(timing.total() >= timing.scatter);
    }
}
