//! Long-running soak tests — `#[ignore]`d by default; run with
//! `cargo test --release -- --ignored` when you want hours of confidence
//! instead of seconds.

use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{try_semisort_pairs, SemisortConfig};
use workloads::{generate, paper_distributions, Arrangement};

#[test]
#[ignore = "soak: hundreds of full runs; invoke explicitly"]
fn soak_many_seeds_every_distribution() {
    for pd in paper_distributions() {
        for seed in 0..12u64 {
            let records = generate(pd.dist, 200_000, seed);
            let cfg = SemisortConfig::default().with_seed(seed * 7 + 1);
            let out = try_semisort_pairs(&records, &cfg).unwrap();
            assert!(
                is_semisorted_by(&out, |r| r.0),
                "{} seed {seed}",
                pd.dist.label()
            );
            assert!(is_permutation_of(&out, &records));
        }
    }
}

#[test]
#[ignore = "soak: large single run near memory limits"]
fn soak_large_single_run() {
    let n = 20_000_000;
    let records = generate(workloads::Distribution::Zipfian { m: n as u64 }, n, 1);
    let out = try_semisort_pairs(&records, &SemisortConfig::default()).unwrap();
    assert_eq!(out.len(), n);
    assert!(is_semisorted_by(&out, |r| r.0));
}

#[test]
#[ignore = "soak: full distribution × arrangement × config grid"]
fn soak_configuration_grid() {
    use semisort::{LocalSortAlgo, ProbeStrategy};
    let dists = paper_distributions();
    for pd in dists.iter().step_by(3) {
        let base = generate(pd.dist, 100_000, 3);
        for arr in Arrangement::all() {
            let mut input = base.clone();
            arr.apply(&mut input, 9);
            for probe in [ProbeStrategy::Linear, ProbeStrategy::Random] {
                for algo in [
                    LocalSortAlgo::StdUnstable,
                    LocalSortAlgo::StdStable,
                    LocalSortAlgo::Counting,
                ] {
                    let cfg = SemisortConfig {
                        probe_strategy: probe,
                        local_sort_algo: algo,
                        ..Default::default()
                    };
                    let out = try_semisort_pairs(&input, &cfg).unwrap();
                    assert!(
                        is_semisorted_by(&out, |r| r.0),
                        "{} {arr:?} {probe:?} {algo:?}",
                        pd.dist.label()
                    );
                    assert!(is_permutation_of(&out, &input));
                }
            }
        }
    }
}
