//! Differential tests of the work-stealing scheduler: semisort results must
//! not depend on how many pool threads execute them.
//!
//! For every thread count in {1, 2, 8} × the 4 workload shapes × the
//! scatter strategies, the output must be **byte-identical after
//! canonicalization** to the sequential baseline. Canonicalization = a full
//! `(key, value)` sort: semisort only promises key-grouping, and the one
//! schedule-visible freedom the algorithm (deliberately — see
//! `driver.rs::valid_at_any_thread_count`) retains is the *intra*-group
//! record order decided by CAS races. Everything else must be invariant:
//! the canonical bytes, the key sequence (group order is seed-determined,
//! not schedule-determined), and the group structure.
//!
//! Two stress tests cover the scheduler's degrade paths: a `join` binary
//! recursion much deeper than the pool (65k tasks on 2 threads must be pure
//! deque traffic) and a *linear* nest that overflows the fixed-capacity
//! deque (pushes start failing and `join` must fall back to inline
//! sequential execution).

use std::collections::HashMap;

use semisort::verify::{is_semisorted_by, runs_by};
use semisort::{try_semisort_pairs, ScatterConfig, ScatterStrategy, SemisortConfig};
use workloads::{generate, Distribution};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const N: usize = 100_000;

fn workload(name: &str, n: usize) -> Vec<(u64, u64)> {
    match name {
        "uniform" => generate(Distribution::Uniform { n: n as u64 }, n, 7),
        "power-law" => generate(Distribution::Zipfian { m: 1_000_000 }, n, 7),
        "all-equal" => generate(Distribution::Uniform { n: 1 }, n, 7),
        // hash64 is a bijection, so these keys are pairwise distinct.
        "all-distinct" => (0..n as u64).map(|i| (parlay::hash64(i), i)).collect(),
        _ => unreachable!(),
    }
}

/// Full-sort canonical form: equal up to the intra-group permutations the
/// algorithm is allowed to vary by schedule. `(u64, u64)` has no padding,
/// so `==` on the sorted vec is byte equality of the canonical encoding.
fn canonical(mut out: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    out.sort_unstable();
    out
}

/// Group sizes per key, independent of group order and intra-group order.
fn group_sizes(out: &[(u64, u64)]) -> HashMap<u64, usize> {
    runs_by(out, |r| r.0)
        .into_iter()
        .map(|(k, _start, len)| (k, len))
        .collect()
}

fn check(dist: &str, strategy: ScatterStrategy) {
    let records = workload(dist, N);
    let cfg = SemisortConfig {
        scatter: ScatterConfig {
            strategy,
            ..ScatterConfig::default()
        },
        ..Default::default()
    };
    let baseline_canonical = canonical(baselines::seq_hash_semisort(&records));
    let mut key_sequences: Vec<(usize, Vec<u64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let out = parlay::with_threads(threads, || try_semisort_pairs(&records, &cfg).unwrap());
        assert!(
            is_semisorted_by(&out, |r| r.0),
            "{dist}/{strategy:?}/threads={threads}: output not semisorted"
        );
        assert_eq!(
            group_sizes(&out),
            group_sizes(&baseline_canonical),
            "{dist}/{strategy:?}/threads={threads}: group structure differs from baseline"
        );
        assert_eq!(
            canonical(out.clone()),
            baseline_canonical,
            "{dist}/{strategy:?}/threads={threads}: canonical bytes differ from sequential baseline"
        );
        key_sequences.push((threads, out.into_iter().map(|r| r.0).collect()));
    }
    // The key sequence (group layout) is decided by the seed, not the
    // schedule: every thread count must produce the same one.
    let (t0, reference) = &key_sequences[0];
    for (t, seq) in &key_sequences[1..] {
        assert_eq!(
            seq, reference,
            "{dist}/{strategy:?}: key sequence at threads={t} differs from threads={t0}"
        );
    }
}

#[test]
fn uniform_random_cas_thread_invariant() {
    check("uniform", ScatterStrategy::RandomCas);
}

#[test]
fn uniform_blocked_thread_invariant() {
    check("uniform", ScatterStrategy::Blocked);
}

#[test]
fn uniform_inplace_thread_invariant() {
    check("uniform", ScatterStrategy::InPlace);
}

#[test]
fn power_law_random_cas_thread_invariant() {
    check("power-law", ScatterStrategy::RandomCas);
}

#[test]
fn power_law_blocked_thread_invariant() {
    check("power-law", ScatterStrategy::Blocked);
}

#[test]
fn power_law_inplace_thread_invariant() {
    check("power-law", ScatterStrategy::InPlace);
}

#[test]
fn all_equal_random_cas_thread_invariant() {
    check("all-equal", ScatterStrategy::RandomCas);
}

#[test]
fn all_equal_blocked_thread_invariant() {
    check("all-equal", ScatterStrategy::Blocked);
}

#[test]
fn all_distinct_random_cas_thread_invariant() {
    check("all-distinct", ScatterStrategy::RandomCas);
}

#[test]
fn all_distinct_blocked_thread_invariant() {
    check("all-distinct", ScatterStrategy::Blocked);
}

#[test]
fn tracing_does_not_change_output() {
    // Scheduler tracing is pure observation: the same seeded run must
    // produce the same bytes with event capture on and off. At threads=1
    // the algorithm is fully deterministic, so this is exact byte
    // equality, not just canonical equality; at threads=2 the canonical
    // form and key sequence must still match.
    let records = workload("power-law", N);
    let cfg = SemisortConfig::default();

    let quiet = parlay::with_threads(1, || try_semisort_pairs(&records, &cfg).unwrap());
    rayon::trace::set_events_enabled(true);
    let traced = parlay::with_threads(1, || try_semisort_pairs(&records, &cfg).unwrap());
    let traced_par = parlay::with_threads(2, || try_semisort_pairs(&records, &cfg).unwrap());
    rayon::trace::set_events_enabled(false);

    assert_eq!(traced, quiet, "tracing changed single-thread output bytes");
    assert_eq!(canonical(traced_par.clone()), canonical(quiet.clone()));
    assert_eq!(
        traced_par.iter().map(|r| r.0).collect::<Vec<_>>(),
        quiet.iter().map(|r| r.0).collect::<Vec<_>>(),
        "tracing at threads=2 changed the key sequence"
    );
}

#[test]
fn join_nest_deeper_than_pool_size() {
    // 2^16 leaf tasks on a 2-thread pool: lazy splitting must absorb the
    // whole recursion as deque pushes/pops (the spawn-per-join shim this
    // scheduler replaced would have needed a budget to survive this).
    fn rec(d: u32) -> u64 {
        if d == 0 {
            return 1;
        }
        let (a, b) = rayon::join(|| rec(d - 1), || rec(d - 1));
        a + b
    }
    let total = parlay::with_threads(2, || rec(16));
    assert_eq!(total, 1 << 16);
}

#[test]
fn linear_join_nest_overflows_deque_gracefully() {
    // Each frame's `b` job stays queued while its `a` arm forks deeper, so
    // 1500 frames exceed the deque's 1024-slot ring: past that, `push`
    // rejects the job and `join` must degrade to inline execution rather
    // than abort, reallocate, or lose a task.
    fn nest(d: u32) -> u64 {
        if d == 0 {
            return 0;
        }
        let (a, b) = rayon::join(|| nest(d - 1), || 1u64);
        a + b
    }
    let depth = 1_500u32;
    let total = parlay::with_threads(2, || nest(depth));
    assert_eq!(total, u64::from(depth));
}

#[test]
fn semisort_inside_nested_joins() {
    // The scheduler must cope with a real workload launched from inside an
    // already-deep join spine on a small pool (worker deques partly full).
    let records = workload("uniform", 20_000);
    let baseline_canonical = canonical(baselines::seq_hash_semisort(&records));
    fn descend<F: FnOnce() -> Vec<(u64, u64)> + Send>(d: u32, f: F) -> Vec<(u64, u64)> {
        if d == 0 {
            return f();
        }
        let (out, _) = rayon::join(move || descend(d - 1, f), || std::hint::black_box(17u64));
        out
    }
    let out = parlay::with_threads(2, || {
        descend(64, || {
            try_semisort_pairs(&records, &SemisortConfig::default()).unwrap()
        })
    });
    assert_eq!(canonical(out), baseline_canonical);
}
