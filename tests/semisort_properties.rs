//! Property-based tests of the semisort's core invariants.
//!
//! For *every* input, any configuration: the output is a permutation of the
//! input and equal keys are contiguous. These are the two properties
//! Algorithm 1's correctness argument establishes (§3).

use proptest::prelude::*;
use semisort::verify::{is_permutation_of, is_semisorted_by};
use semisort::{
    try_semisort_pairs, try_semisort_with_stats, LocalSortAlgo, ProbeStrategy, ScatterConfig,
    ScatterStrategy, SemisortConfig,
};

/// A config that exercises the parallel machinery even on small inputs.
fn small_cfg() -> SemisortConfig {
    SemisortConfig {
        seq_threshold: 32,
        ..Default::default()
    }
}

fn arb_records(max_len: usize, key_space: u64) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..key_space, any::<u64>()), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(k, p)| (parlay::hash64(k), p)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn semisorted_and_permutation_small_keyspace(recs in arb_records(2000, 10)) {
        let out = try_semisort_pairs(&recs, &small_cfg()).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn semisorted_and_permutation_large_keyspace(recs in arb_records(2000, 1_000_000)) {
        let out = try_semisort_pairs(&recs, &small_cfg()).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn raw_unhashed_keys_still_work(recs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..1500)) {
        // The driver requires *uniform* keys only for its probabilistic size
        // bounds; correctness must hold for adversarial (non-uniform) keys
        // too, via retries if need be.
        let out = try_semisort_pairs(&recs, &small_cfg()).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn every_probe_strategy_and_local_sort(
        recs in arb_records(1500, 50),
        probe_linear in any::<bool>(),
        algo_idx in 0usize..3,
    ) {
        let cfg = SemisortConfig {
            seq_threshold: 32,
            probe_strategy: if probe_linear { ProbeStrategy::Linear } else { ProbeStrategy::Random },
            local_sort_algo: [LocalSortAlgo::StdUnstable, LocalSortAlgo::StdStable, LocalSortAlgo::Counting][algo_idx],
            ..Default::default()
        };
        let out = try_semisort_pairs(&recs, &cfg).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn config_sweep_keeps_invariants(
        recs in arb_records(1200, 30),
        shift in 1u32..8,
        delta in 2usize..40,
        merge in any::<bool>(),
    ) {
        let cfg = SemisortConfig {
            seq_threshold: 32,
            sample_shift: shift,
            heavy_threshold: delta,
            merge_light_buckets: merge,
            light_bucket_log2: 10,
            ..Default::default()
        };
        let out = try_semisort_pairs(&recs, &cfg).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn scatter_strategies_keep_invariants(
        recs in arb_records(1500, 40),
        strat_idx in 0usize..3,
        shift in 2u32..7,
        delta in 4usize..65,
        block_log2 in 0u32..7,
        tail_log2 in 1u32..5,
        swap_log2 in 0u32..7,
    ) {
        // Random configs across the paper's parameter neighbourhood
        // (p = 1/4 … 1/64, δ = 4 … 64), all three scatter paths, and the
        // per-path knobs (block 1 … 64, tail 1/2 … 1/16, swap buffer
        // 1 … 64).
        let cfg = SemisortConfig {
            seq_threshold: 32,
            sample_shift: shift,
            heavy_threshold: delta,
            scatter: ScatterConfig {
                strategy: [
                    ScatterStrategy::RandomCas,
                    ScatterStrategy::Blocked,
                    ScatterStrategy::InPlace,
                ][strat_idx],
                block: 1 << block_log2,
                tail_log2,
                swap_buffer: 1 << swap_log2,
                ..ScatterConfig::default()
            },
            ..Default::default()
        };
        let (out, stats) = try_semisort_with_stats(&recs, &cfg).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
        // Stats invariants: the heavy/light split partitions the input, and
        // whenever the bucket machinery ran, it allocated at least one slot
        // per record (a successful scatter is injective into the arena).
        prop_assert_eq!(stats.heavy_records + stats.light_records, recs.len());
        if stats.total_slots > 0 {
            prop_assert!(stats.total_slots >= recs.len());
        }
    }

    #[test]
    fn blocked_sentinel_keys_are_handled(mut recs in arb_records(800, 20), pos in any::<prop::sample::Index>()) {
        if !recs.is_empty() {
            let len = recs.len();
            let i = pos.index(len);
            recs[i].0 = 0; // scatter EMPTY → sort fallback, any strategy
        }
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                strategy: ScatterStrategy::Blocked,
                ..ScatterConfig::default()
            },
            ..small_cfg()
        };
        let out = try_semisort_pairs(&recs, &cfg).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }

    #[test]
    fn sentinel_keys_are_handled(mut recs in arb_records(800, 20), pos in any::<prop::sample::Index>()) {
        // Force the reserved sentinels into the input.
        if !recs.is_empty() {
            let len = recs.len();
            let i = pos.index(len);
            recs[i].0 = 0; // scatter EMPTY
            recs[(i + 1) % len].0 = u64::MAX; // table EMPTY
        }
        let out = try_semisort_pairs(&recs, &small_cfg()).unwrap();
        prop_assert!(is_semisorted_by(&out, |r| r.0));
        prop_assert!(is_permutation_of(&out, &recs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn semisort_by_key_generic_strings(words in prop::collection::vec("[a-c]{1,3}", 0..800)) {
        let out = semisort::try_semisort_by_key(&words, |w| w.clone(), &small_cfg()).unwrap();
        prop_assert!(is_semisorted_by(&out, |w| w.clone()));
        prop_assert!(is_permutation_of(&out, &words));
    }

    #[test]
    fn group_by_groups_cover_input(keys in prop::collection::vec(0u32..50, 0..1000)) {
        let groups = semisort::try_group_by(&keys, |&k| k, &small_cfg()).unwrap();
        let mut total = 0usize;
        let mut seen = std::collections::HashSet::new();
        for g in groups.iter() {
            prop_assert!(!g.is_empty());
            prop_assert!(g.iter().all(|&k| k == g[0]));
            prop_assert!(seen.insert(g[0]), "key {} appears in two groups", g[0]);
            total += g.len();
        }
        prop_assert_eq!(total, keys.len());
    }
}
