//! End-to-end tests of the `semisort-cli` binary: generate → sort → verify
//! through the real file format, for every algorithm backend.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semisort-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("semisort_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_sort_verify_roundtrip_all_algorithms() {
    let data = tmp("data.bin");
    let status = cli()
        .args(["generate", "--dist", "zipf:50000", "--n", "100k", "--out"])
        .arg(&data)
        .status()
        .expect("run generate");
    assert!(status.success());
    assert_eq!(std::fs::metadata(&data).unwrap().len(), 100_000 * 16);

    for algo in ["semisort", "radix", "sample", "stdsort", "seq-hash", "rr"] {
        let sorted = tmp(&format!("sorted_{algo}.bin"));
        let status = cli()
            .args(["sort", "--algo", algo, "--input"])
            .arg(&data)
            .arg("--out")
            .arg(&sorted)
            .status()
            .expect("run sort");
        assert!(status.success(), "{algo} sort failed");

        let out = cli()
            .args(["verify", "--input"])
            .arg(&sorted)
            .output()
            .expect("run verify");
        assert!(out.status.success(), "{algo} output failed verification");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("SEMISORTED"), "{algo}: {text}");
        std::fs::remove_file(&sorted).ok();
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn verify_rejects_unsorted_input() {
    let data = tmp("unsorted.bin");
    cli()
        .args(["generate", "--dist", "uniform:100", "--n", "10k", "--out"])
        .arg(&data)
        .status()
        .expect("run generate");
    let out = cli()
        .args(["verify", "--input"])
        .arg(&data)
        .output()
        .expect("run verify");
    assert!(
        !out.status.success(),
        "raw generated data should fail verification"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn sort_respects_thread_flag_and_stats() {
    let data = tmp("threads.bin");
    cli()
        .args(["generate", "--dist", "exp:1000", "--n", "50k", "--out"])
        .arg(&data)
        .status()
        .expect("generate");
    let sorted = tmp("threads_sorted.bin");
    let out = cli()
        .args(["sort", "--threads", "2", "--stats", "--input"])
        .arg(&data)
        .arg("--out")
        .arg(&sorted)
        .output()
        .expect("sort");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("scatter"), "stats should list phases: {err}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&sorted).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!cli().status().expect("run").success());
    assert!(!cli().args(["sort"]).status().expect("run").success());
    assert!(!cli()
        .args(["generate", "--dist", "nope:1", "--n", "1", "--out", "/tmp/x"])
        .status()
        .expect("run")
        .success());
}

#[test]
fn sort_writes_stats_json() {
    let data = tmp("statsjson.bin");
    cli()
        .args(["generate", "--dist", "zipf:5000", "--n", "50k", "--out"])
        .arg(&data)
        .status()
        .expect("generate");
    let sorted = tmp("statsjson_sorted.bin");
    let stats = tmp("stats.json");
    let status = cli()
        .args(["sort", "--telemetry", "deep", "--input"])
        .arg(&data)
        .arg("--out")
        .arg(&sorted)
        .arg("--stats-json")
        .arg(&stats)
        .status()
        .expect("sort");
    assert!(status.success());

    let text = std::fs::read_to_string(&stats).expect("stats file written");
    let json = semisort::Json::parse(&text).expect("stats file is valid JSON");
    assert_eq!(
        json.get("schema").and_then(semisort::Json::as_str),
        Some("semisort-stats-v2")
    );
    assert_eq!(json.get("n").and_then(semisort::Json::as_u64), Some(50_000));
    assert_eq!(
        json.get("telemetry")
            .and_then(|t| t.get("level"))
            .and_then(semisort::Json::as_str),
        Some("deep")
    );

    // The in-tree validator accepts what sort wrote, including through a
    // comma-separated alternative list spanning the schema bump…
    let status = cli()
        .args(["validate-json", "--schema", "semisort-stats-v2", "--input"])
        .arg(&stats)
        .status()
        .expect("validate");
    assert!(status.success());
    let status = cli()
        .args([
            "validate-json",
            "--schema",
            "semisort-stats-v1,semisort-stats-v2",
            "--input",
        ])
        .arg(&stats)
        .status()
        .expect("validate");
    assert!(status.success());
    // …and rejects a wrong schema expectation.
    let status = cli()
        .args(["validate-json", "--schema", "other-schema", "--input"])
        .arg(&stats)
        .status()
        .expect("validate");
    assert!(!status.success());

    for p in [&data, &sorted, &stats] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn bench_appends_trajectory_records() {
    let stats = tmp("bench_stats.json");
    let traj = tmp("bench_traj.json");
    std::fs::remove_file(&traj).ok();
    for _ in 0..2 {
        let status = cli()
            .args(["bench", "--quick", "--n", "30k", "--telemetry", "counters"])
            .arg("--stats-json")
            .arg(&stats)
            .arg("--trajectory")
            .arg(&traj)
            .status()
            .expect("bench");
        assert!(status.success());
    }
    let text = std::fs::read_to_string(&traj).expect("trajectory written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSONL record per bench run");
    for line in &lines {
        let rec = semisort::Json::parse(line).expect("trajectory line parses");
        assert_eq!(
            rec.get("schema").and_then(semisort::Json::as_str),
            Some("semisort-bench-v1")
        );
        assert_eq!(
            rec.get("bin").and_then(semisort::Json::as_str),
            Some("semisort-cli")
        );
        assert_eq!(
            rec.get("stats")
                .and_then(|s| s.get("schema"))
                .and_then(semisort::Json::as_str),
            Some("semisort-stats-v2")
        );
        // Both the flag echo and the registry-observed thread count.
        assert!(rec
            .get("threads")
            .and_then(semisort::Json::as_u64)
            .is_some());
        assert!(rec
            .get("threads_effective")
            .and_then(semisort::Json::as_u64)
            .is_some());
    }
    let status = cli()
        .args([
            "validate-json",
            "--jsonl",
            "--schema",
            "semisort-bench-v1",
            "--input",
        ])
        .arg(&traj)
        .status()
        .expect("validate");
    assert!(status.success());
    std::fs::remove_file(&stats).ok();
    std::fs::remove_file(&traj).ok();
}

#[test]
fn trace_emits_a_perfetto_loadable_file() {
    let trace = tmp("run.trace.json");
    let status = cli()
        .args(["trace", "--n", "200k", "--threads", "2", "--out"])
        .arg(&trace)
        .status()
        .expect("trace");
    assert!(status.success());

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = semisort::Json::parse(&text).expect("trace file is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(semisort::Json::as_str),
        Some("semisort-trace-v1")
    );
    let events = doc
        .get("traceEvents")
        .and_then(semisort::Json::as_arr)
        .expect("traceEvents array");
    // Chrome Trace Event Format essentials: every event has ph/pid/tid,
    // and the five phase spans appear as "X" duration slices.
    for e in events {
        assert!(e.get("ph").and_then(semisort::Json::as_str).is_some());
        assert!(e.get("pid").and_then(semisort::Json::as_u64).is_some());
        assert!(e.get("tid").and_then(semisort::Json::as_u64).is_some());
    }
    for phase in [
        "sample_sort",
        "construct_buckets",
        "scatter",
        "local_sort",
        "pack",
    ] {
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(semisort::Json::as_str) == Some(phase)
                    && e.get("ph").and_then(semisort::Json::as_str) == Some("X")
            }),
            "phase span {phase} missing from trace"
        );
    }
    // Scheduler rows: on a 2-thread pool the run parks and/or steals.
    assert!(
        events.iter().any(|e| {
            matches!(
                e.get("name").and_then(semisort::Json::as_str),
                Some("park" | "steal")
            )
        }),
        "expected at least one scheduler event at threads=2"
    );

    // And the validator accepts the trace schema like any other artifact.
    let status = cli()
        .args(["validate-json", "--schema", "semisort-trace-v1", "--input"])
        .arg(&trace)
        .status()
        .expect("validate");
    assert!(status.success());
    std::fs::remove_file(&trace).ok();
}

#[test]
fn validate_json_roundtrips_audit_v1_reports() {
    // Round-trip of the `cargo xtask audit`/`audit-atomics` report family:
    // a document shaped exactly like the emitter's output must validate…
    let good = tmp("audit_good.json");
    std::fs::write(
        &good,
        concat!(
            "{\"schema\":\"semisort-audit-v1\",\"ok\":false,\"passes\":[",
            "{\"pass\":\"lint\",\"ok\":true,\"files_scanned\":12,\"violations\":[]},",
            "{\"pass\":\"audit-atomics\",\"ok\":false,\"files_scanned\":12,\"violations\":[",
            "{\"rule\":\"missing-ordering-contract\",\"file\":\"crates/semisort/src/scatter.rs\",",
            "\"line\":7,\"message\":\"atomic site without an ORDERING contract\"}]}]}"
        ),
    )
    .unwrap();
    let status = cli()
        .args(["validate-json", "--schema", "semisort-audit-v1", "--input"])
        .arg(&good)
        .status()
        .expect("validate");
    assert!(status.success(), "well-formed audit report must validate");

    // …a report whose `ok` flag lies about its violations must not…
    let inconsistent = tmp("audit_inconsistent.json");
    std::fs::write(
        &inconsistent,
        concat!(
            "{\"schema\":\"semisort-audit-v1\",\"ok\":true,\"passes\":[",
            "{\"pass\":\"audit-atomics\",\"ok\":true,\"files_scanned\":3,\"violations\":[",
            "{\"rule\":\"seqcst-outside-allowlist\",\"file\":\"a.rs\",\"line\":1,",
            "\"message\":\"m\"}]}]}"
        ),
    )
    .unwrap();
    let out = cli()
        .args(["validate-json", "--input"])
        .arg(&inconsistent)
        .output()
        .expect("validate");
    assert!(
        !out.status.success(),
        "ok flag disagreeing with violations must fail"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("disagrees"));

    // …and a violation record missing a required member must not either
    // (the structural check fires even without --schema).
    let truncated = tmp("audit_truncated.json");
    std::fs::write(
        &truncated,
        concat!(
            "{\"schema\":\"semisort-audit-v1\",\"ok\":false,\"passes\":[",
            "{\"pass\":\"lint\",\"ok\":false,\"files_scanned\":3,\"violations\":[",
            "{\"rule\":\"undocumented-unsafe\",\"file\":\"a.rs\",\"message\":\"m\"}]}]}"
        ),
    )
    .unwrap();
    let out = cli()
        .args(["validate-json", "--input"])
        .arg(&truncated)
        .output()
        .expect("validate");
    assert!(
        !out.status.success(),
        "violation without a line number must fail"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing `line`"));

    for p in [&good, &inconsistent, &truncated] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn validate_json_rejects_malformed_input() {
    let bad = tmp("bad.json");
    std::fs::write(&bad, "{\"schema\": \"semisort-stats-v1\",").unwrap();
    let status = cli()
        .args(["validate-json", "--input"])
        .arg(&bad)
        .status()
        .expect("validate");
    assert!(!status.success(), "truncated JSON must fail validation");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn fault_flag_with_error_policy_exits_with_structured_error() {
    // Mirrors the CI chaos smoke: persistent forced overflow with a retry
    // budget of 1 under --on-overflow error must exit nonzero and print
    // one structured {"event":"error",...} line to stderr.
    let out = cli()
        .args([
            "bench",
            "--quick",
            "--n",
            "50k",
            "--on-overflow",
            "error",
            "--max-retries",
            "1",
            "--fault",
            "force-overflow:2",
            "--trajectory",
            "none",
        ])
        .output()
        .expect("bench");
    assert!(!out.status.success(), "error policy must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"event\":\"error\""), "stderr: {err}");
    assert!(
        err.contains("\"kind\":\"retries-exhausted\""),
        "stderr: {err}"
    );
}

#[test]
fn fault_flag_with_fallback_policy_degrades_and_succeeds() {
    // Same persistent fault under the default fallback policy: exit 0, and
    // the stats JSON records the degradation.
    let stats = tmp("chaos_stats.json");
    let status = cli()
        .args([
            "bench",
            "--quick",
            "--n",
            "50k",
            "--max-retries",
            "1",
            "--fault",
            "force-overflow:31",
            "--trajectory",
            "none",
        ])
        .arg("--stats-json")
        .arg(&stats)
        .status()
        .expect("bench");
    assert!(status.success(), "fallback policy must keep the run alive");
    let text = std::fs::read_to_string(&stats).expect("stats written");
    let json = semisort::Json::parse(&text).expect("stats parse");
    let outcome = json.get("outcome").expect("outcome section");
    assert_eq!(
        outcome.get("degraded").and_then(semisort::Json::as_bool),
        Some(true)
    );
    assert_eq!(
        outcome.get("reason").and_then(semisort::Json::as_str),
        Some("retries-exhausted")
    );
    std::fs::remove_file(&stats).ok();
}

#[test]
fn semisort_log_emits_span_lines() {
    let data = tmp("log.bin");
    cli()
        .args(["generate", "--dist", "uniform:50000", "--n", "50k", "--out"])
        .arg(&data)
        .status()
        .expect("generate");
    let sorted = tmp("log_sorted.bin");
    let out = cli()
        .env("SEMISORT_LOG", "1")
        .args(["sort", "--input"])
        .arg(&data)
        .arg("--out")
        .arg(&sorted)
        .output()
        .expect("sort");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    for phase in [
        "sample_sort",
        "construct_buckets",
        "scatter",
        "local_sort",
        "pack",
    ] {
        let needle = format!("{{\"event\":\"span\",\"name\":\"{phase}\"");
        assert!(err.contains(&needle), "missing span for {phase}: {err}");
    }
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&sorted).ok();
}
