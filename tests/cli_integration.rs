//! End-to-end tests of the `semisort-cli` binary: generate → sort → verify
//! through the real file format, for every algorithm backend.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semisort-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("semisort_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn generate_sort_verify_roundtrip_all_algorithms() {
    let data = tmp("data.bin");
    let status = cli()
        .args(["generate", "--dist", "zipf:50000", "--n", "100k", "--out"])
        .arg(&data)
        .status()
        .expect("run generate");
    assert!(status.success());
    assert_eq!(std::fs::metadata(&data).unwrap().len(), 100_000 * 16);

    for algo in ["semisort", "radix", "sample", "stdsort", "seq-hash", "rr"] {
        let sorted = tmp(&format!("sorted_{algo}.bin"));
        let status = cli()
            .args(["sort", "--algo", algo, "--input"])
            .arg(&data)
            .arg("--out")
            .arg(&sorted)
            .status()
            .expect("run sort");
        assert!(status.success(), "{algo} sort failed");

        let out = cli()
            .args(["verify", "--input"])
            .arg(&sorted)
            .output()
            .expect("run verify");
        assert!(out.status.success(), "{algo} output failed verification");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("SEMISORTED"), "{algo}: {text}");
        std::fs::remove_file(&sorted).ok();
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn verify_rejects_unsorted_input() {
    let data = tmp("unsorted.bin");
    cli()
        .args(["generate", "--dist", "uniform:100", "--n", "10k", "--out"])
        .arg(&data)
        .status()
        .expect("run generate");
    let out = cli()
        .args(["verify", "--input"])
        .arg(&data)
        .output()
        .expect("run verify");
    assert!(
        !out.status.success(),
        "raw generated data should fail verification"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn sort_respects_thread_flag_and_stats() {
    let data = tmp("threads.bin");
    cli()
        .args(["generate", "--dist", "exp:1000", "--n", "50k", "--out"])
        .arg(&data)
        .status()
        .expect("generate");
    let sorted = tmp("threads_sorted.bin");
    let out = cli()
        .args(["sort", "--threads", "2", "--stats", "--input"])
        .arg(&data)
        .arg("--out")
        .arg(&sorted)
        .output()
        .expect("sort");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("scatter"), "stats should list phases: {err}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&sorted).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!cli().status().expect("run").success());
    assert!(!cli().args(["sort"]).status().expect("run").success());
    assert!(!cli()
        .args(["generate", "--dist", "nope:1", "--n", "1", "--out", "/tmp/x"])
        .status()
        .expect("run")
        .success());
}
