//! Structural claims from the paper, checked as tests (the *shape* facts
//! that don't need a 40-core machine).

use semisort::{try_semisort_with_stats, SemisortConfig};
use workloads::{generate, paper_distributions, representative_distributions, Distribution};

const N: usize = 200_000;

/// §5.1: the representative exponential distribution (λ = n/10³) "contains
/// about 30% light keys and 70% heavy keys".
#[test]
fn representative_exponential_is_about_70pct_heavy() {
    let (exp_dist, _) = representative_distributions(N);
    let records = generate(exp_dist, N, 1);
    let (_, stats) = try_semisort_with_stats(&records, &SemisortConfig::default()).unwrap();
    let pct = stats.heavy_fraction_pct();
    assert!(
        (60.0..85.0).contains(&pct),
        "expected ≈70% heavy records, measured {pct:.1}%"
    );
}

/// §5.1: the representative uniform distribution (N = n) "contains only
/// light keys".
#[test]
fn representative_uniform_is_all_light() {
    let (_, uni_dist) = representative_distributions(N);
    let records = generate(uni_dist, N, 1);
    let (_, stats) = try_semisort_with_stats(&records, &SemisortConfig::default()).unwrap();
    assert_eq!(stats.heavy_records, 0);
    assert_eq!(stats.heavy_keys, 0);
}

/// Table 1's "% heavy" row spans 0%..100% across the 17 distributions, and
/// our measured fractions track the paper's where scale-invariant:
/// parameters far below n give ~100% heavy, parameters at/above n give ~0%.
#[test]
fn heavy_fraction_extremes_match_table1() {
    let cfg = SemisortConfig::default();
    // uniform(10): every key duplicated n/10 times — 100% heavy.
    let recs = generate(Distribution::Uniform { n: 10 }, N, 2);
    let (_, s) = try_semisort_with_stats(&recs, &cfg).unwrap();
    assert!(
        s.heavy_fraction_pct() > 99.9,
        "uniform(10): {}",
        s.heavy_fraction_pct()
    );

    // uniform(N = n): all light (0%).
    let recs = generate(Distribution::Uniform { n: N as u64 }, N, 2);
    let (_, s) = try_semisort_with_stats(&recs, &cfg).unwrap();
    assert!(s.heavy_fraction_pct() < 0.1);

    // zipf over a huge range still has a heavy head at any scale (the
    // paper measures 54% at n = 10⁸; at n = 2·10⁵ the head is relatively
    // lighter, ≈23%, but clearly nonzero).
    let recs = generate(Distribution::Zipfian { m: 100_000_000 }, N, 2);
    let (_, s) = try_semisort_with_stats(&recs, &cfg).unwrap();
    assert!(
        s.heavy_fraction_pct() > 15.0,
        "zipf head should be heavy: {}",
        s.heavy_fraction_pct()
    );
}

/// Lemma 3.5: total allocated slots are Θ(n) — the blowup factor must stay
/// bounded across every distribution (the constant depends on p, δ and the
/// bucket count; with the paper's constants it is < 10).
#[test]
fn space_blowup_bounded_on_all_distributions() {
    let cfg = SemisortConfig::default();
    for pd in paper_distributions() {
        let records = generate(pd.dist, N, 3);
        let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
        assert!(
            stats.space_blowup() < 10.0,
            "{}: slots/n = {:.2}",
            pd.dist.label(),
            stats.space_blowup()
        );
    }
}

/// §3: the expected sample size is n·p = n/16.
#[test]
fn sample_size_is_n_over_16() {
    let records = generate(Distribution::Uniform { n: 1 << 30 }, N, 4);
    let (_, stats) = try_semisort_with_stats(&records, &SemisortConfig::default()).unwrap();
    assert_eq!(stats.sample_size, N.div_ceil(16));
}

/// §4 Phase 2: with merging, light buckets hold ≥ δ samples, so there are
/// at most |S|/δ + 1 of them — far fewer than the 2^16 prefix classes when
/// the sample is small.
#[test]
fn merged_light_bucket_count_is_bounded_by_sample() {
    let records = generate(Distribution::Uniform { n: 1 << 40 }, N, 5);
    let (_, stats) = try_semisort_with_stats(&records, &SemisortConfig::default()).unwrap();
    let bound = stats.sample_size / 16 + 1;
    assert!(
        stats.light_buckets <= bound,
        "light buckets {} exceed |S|/δ + 1 = {bound}",
        stats.light_buckets
    );
}

/// Corollary 3.4 in practice: with the paper's constants, no retries are
/// needed on any of the 17 distributions ("this size was sufficient to
/// prevent overflow on all of our inputs").
#[test]
fn no_retries_on_any_paper_distribution() {
    let cfg = SemisortConfig::default();
    for pd in paper_distributions() {
        let records = generate(pd.dist, N, 6);
        let (_, stats) = try_semisort_with_stats(&records, &cfg).unwrap();
        assert_eq!(stats.retries, 0, "{} needed retries", pd.dist.label());
    }
}

/// §5.2: stability across distributions — the paper reports a ≈20% running
/// time spread over all 17 distributions. Wall-clock is too noisy for a CI
/// assertion on a shared core, so we pin the deterministic quantity
/// underneath it: counted work per record (see `semisort::analysis`), whose
/// spread must stay within a small constant. A pathological
/// per-distribution blowup (quadratic probing, mis-sized buckets) would
/// show up here immediately.
#[test]
fn work_is_stable_across_distributions() {
    let cfg = SemisortConfig::default();
    let mut work = Vec::new();
    for pd in paper_distributions() {
        let records = generate(pd.dist, N, 8);
        let cost = semisort::analysis::analyze(&records, &cfg);
        work.push(cost.work_per_record());
    }
    let min = work.iter().cloned().fold(f64::MAX, f64::min);
    let max = work.iter().cloned().fold(0.0, f64::max);
    // Counted work legitimately varies more than time (≈3×: all-heavy
    // inputs skip the local sort and allocate fewer slots, while wall time
    // stays flat because the scatter's memory latency dominates every
    // distribution equally — that flatness is the paper's 20% claim). The
    // bound below catches real pathologies (quadratic probing, mis-sized
    // buckets blow this up by orders of magnitude), not benign variation.
    assert!(
        max / min < 4.0,
        "distribution work spread too wide: {min:.2} .. {max:.2} ops/record"
    );
    assert!(max < 40.0, "absolute work/record too high: {max:.2}");
}
