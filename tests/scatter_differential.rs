//! Differential tests of the three scatter strategies.
//!
//! For every workload shape (uniform, power-law, all-equal, all-distinct)
//! and sizes 10³ / 10⁵ / 10⁶, each of `ScatterStrategy::RandomCas`,
//! `::Blocked`, and `::InPlace` must produce a valid semisort whose
//! canonical bytes (records sorted by key then payload — the unique
//! representative of the output's multiset) are identical to the trivially
//! correct sequential baseline ([`baselines::seq_hash_semisort`]), with
//! identical per-key group sizes.
//!
//! A thread matrix (1 / 2 / 8 workers) then pins two stronger properties:
//! the canonical bytes stay baseline-identical at every thread count, and
//! each strategy's output *key sequence* is thread-count invariant (bucket
//! regions are deterministic; light regions are sorted by key).

use std::collections::HashMap;

use semisort::verify::{is_semisorted_by, runs_by};
use semisort::{try_semisort_pairs, ScatterConfig, ScatterStrategy, SemisortConfig};
use workloads::{generate, Distribution};

const SIZES: [usize; 3] = [1_000, 100_000, 1_000_000];
const DISTS: [&str; 4] = ["uniform", "power-law", "all-equal", "all-distinct"];
const STRATEGIES: [ScatterStrategy; 3] = [
    ScatterStrategy::RandomCas,
    ScatterStrategy::Blocked,
    ScatterStrategy::InPlace,
];

fn workload(name: &str, n: usize) -> Vec<(u64, u64)> {
    match name {
        "uniform" => generate(Distribution::Uniform { n: n as u64 }, n, 7),
        "power-law" => generate(Distribution::Zipfian { m: 1_000_000 }, n, 7),
        "all-equal" => generate(Distribution::Uniform { n: 1 }, n, 7),
        // hash64 is a bijection, so these keys are pairwise distinct.
        "all-distinct" => (0..n as u64).map(|i| (parlay::hash64(i), i)).collect(),
        _ => unreachable!(),
    }
}

fn cfg_for(strategy: ScatterStrategy) -> SemisortConfig {
    SemisortConfig {
        scatter: ScatterConfig {
            strategy,
            ..ScatterConfig::default()
        },
        ..Default::default()
    }
}

/// The unique canonical representative of a record multiset: sorted by key
/// then payload. Two outputs are multiset-equal iff their canonical forms
/// are byte-identical — `assert_eq!` on these IS the byte comparison.
fn canonical(out: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut c = out.to_vec();
    c.sort_unstable();
    c
}

/// Group sizes per key, independent of group order and intra-group order.
fn group_sizes(out: &[(u64, u64)]) -> HashMap<u64, usize> {
    runs_by(out, |r| r.0)
        .into_iter()
        .map(|(k, _start, len)| (k, len))
        .collect()
}

fn check_against_baseline(out: &[(u64, u64)], baseline: &[(u64, u64)], ctx: &str) {
    assert!(is_semisorted_by(out, |r| r.0), "{ctx}: not semisorted");
    assert_eq!(
        canonical(out),
        canonical(baseline),
        "{ctx}: canonical bytes differ from seq_hash"
    );
    assert_eq!(
        group_sizes(out),
        group_sizes(baseline),
        "{ctx}: group structure differs from seq_hash"
    );
}

fn check_strategy(dist: &str, strategy: ScatterStrategy) {
    let cfg = cfg_for(strategy);
    for n in SIZES {
        let records = workload(dist, n);
        let out = try_semisort_pairs(&records, &cfg).unwrap();
        let baseline = baselines::seq_hash_semisort(&records);
        check_against_baseline(&out, &baseline, &format!("{dist}/{strategy:?}/n={n}"));
    }
}

#[test]
fn uniform_random_cas() {
    check_strategy("uniform", ScatterStrategy::RandomCas);
}

#[test]
fn uniform_blocked() {
    check_strategy("uniform", ScatterStrategy::Blocked);
}

#[test]
fn uniform_inplace() {
    check_strategy("uniform", ScatterStrategy::InPlace);
}

#[test]
fn power_law_random_cas() {
    check_strategy("power-law", ScatterStrategy::RandomCas);
}

#[test]
fn power_law_blocked() {
    check_strategy("power-law", ScatterStrategy::Blocked);
}

#[test]
fn power_law_inplace() {
    check_strategy("power-law", ScatterStrategy::InPlace);
}

#[test]
fn all_equal_random_cas() {
    check_strategy("all-equal", ScatterStrategy::RandomCas);
}

#[test]
fn all_equal_blocked() {
    check_strategy("all-equal", ScatterStrategy::Blocked);
}

#[test]
fn all_equal_inplace() {
    check_strategy("all-equal", ScatterStrategy::InPlace);
}

#[test]
fn all_distinct_random_cas() {
    check_strategy("all-distinct", ScatterStrategy::RandomCas);
}

#[test]
fn all_distinct_blocked() {
    check_strategy("all-distinct", ScatterStrategy::Blocked);
}

#[test]
fn all_distinct_inplace() {
    check_strategy("all-distinct", ScatterStrategy::InPlace);
}

/// The full strategy × distribution × thread-count matrix: canonical bytes
/// match the sequential baseline at 1, 2, and 8 workers, and each
/// strategy's key sequence is identical at every thread count (the output
/// *layout* is deterministic even though payload order within a group is
/// scheduling-dependent).
#[test]
fn thread_matrix_matches_baseline() {
    const N: usize = 60_000;
    for dist in DISTS {
        let records = workload(dist, N);
        let baseline = baselines::seq_hash_semisort(&records);
        for strategy in STRATEGIES {
            let cfg = cfg_for(strategy);
            let mut key_seq: Option<Vec<u64>> = None;
            for threads in [1usize, 2, 8] {
                let out =
                    parlay::with_threads(threads, || try_semisort_pairs(&records, &cfg).unwrap());
                check_against_baseline(
                    &out,
                    &baseline,
                    &format!("{dist}/{strategy:?}/threads={threads}"),
                );
                let keys: Vec<u64> = out.iter().map(|r| r.0).collect();
                match &key_seq {
                    None => key_seq = Some(keys),
                    Some(want) => assert_eq!(
                        want, &keys,
                        "{dist}/{strategy:?}: key sequence varies with thread count"
                    ),
                }
            }
        }
    }
}

/// Force maximal strand/reconcile traffic through the in-place scatter: a
/// swap buffer of 1–2 records turns every displacement chain into
/// single-record hops, and 8 workers on skewed keys maximize cross-worker
/// stranding. Canonical bytes must still match the baseline exactly.
#[test]
fn inplace_tiny_swap_buffer_stress() {
    const N: usize = 40_000;
    for swap_buffer in [1usize, 2] {
        let cfg = SemisortConfig {
            scatter: ScatterConfig {
                strategy: ScatterStrategy::InPlace,
                swap_buffer,
                ..ScatterConfig::default()
            },
            ..Default::default()
        };
        for dist in DISTS {
            let records = workload(dist, N);
            let baseline = baselines::seq_hash_semisort(&records);
            for threads in [1usize, 2, 8] {
                let out =
                    parlay::with_threads(threads, || try_semisort_pairs(&records, &cfg).unwrap());
                check_against_baseline(
                    &out,
                    &baseline,
                    &format!("{dist}/swap={swap_buffer}/threads={threads}"),
                );
            }
        }
    }
}

/// Beyond all matching the baseline: the three strategies' outputs are
/// pairwise multiset-equal with identical group structure under a
/// non-default seed.
#[test]
fn strategies_agree_with_each_other() {
    for dist in DISTS {
        for n in [1_000usize, 100_000] {
            let records = workload(dist, n);
            let outs: Vec<Vec<(u64, u64)>> = STRATEGIES
                .iter()
                .map(|&strategy| {
                    let cfg = SemisortConfig {
                        scatter: ScatterConfig {
                            strategy,
                            ..ScatterConfig::default()
                        },
                        ..SemisortConfig::default().with_seed(0xd1ff)
                    };
                    try_semisort_pairs(&records, &cfg).unwrap()
                })
                .collect();
            for pair in outs.windows(2) {
                assert_eq!(canonical(&pair[0]), canonical(&pair[1]), "{dist}/n={n}");
                assert_eq!(group_sizes(&pair[0]), group_sizes(&pair[1]), "{dist}/n={n}");
            }
        }
    }
}
