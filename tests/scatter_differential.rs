//! Differential tests of the two scatter strategies.
//!
//! For every workload shape (uniform, power-law, all-equal, all-distinct)
//! and sizes 10³ / 10⁵ / 10⁶, both `ScatterStrategy::RandomCas` and
//! `ScatterStrategy::Blocked` must produce a valid semisort whose groups
//! are multiset-equal to the trivially correct sequential baseline
//! ([`baselines::seq_hash_semisort`]).

use std::collections::HashMap;

use semisort::verify::{is_permutation_of, is_semisorted_by, runs_by};
use semisort::{semisort_pairs, ScatterStrategy, SemisortConfig};
use workloads::{generate, Distribution};

const SIZES: [usize; 3] = [1_000, 100_000, 1_000_000];

fn workload(name: &str, n: usize) -> Vec<(u64, u64)> {
    match name {
        "uniform" => generate(Distribution::Uniform { n: n as u64 }, n, 7),
        "power-law" => generate(Distribution::Zipfian { m: 1_000_000 }, n, 7),
        "all-equal" => generate(Distribution::Uniform { n: 1 }, n, 7),
        // hash64 is a bijection, so these keys are pairwise distinct.
        "all-distinct" => (0..n as u64).map(|i| (parlay::hash64(i), i)).collect(),
        _ => unreachable!(),
    }
}

/// Group sizes per key, independent of group order and intra-group order.
fn group_sizes(out: &[(u64, u64)]) -> HashMap<u64, usize> {
    runs_by(out, |r| r.0)
        .into_iter()
        .map(|(k, _start, len)| (k, len))
        .collect()
}

fn check_strategy(dist: &str, strategy: ScatterStrategy) {
    let cfg = SemisortConfig {
        scatter_strategy: strategy,
        ..Default::default()
    };
    for n in SIZES {
        let records = workload(dist, n);
        let out = semisort_pairs(&records, &cfg);
        assert!(
            is_semisorted_by(&out, |r| r.0),
            "{dist}/{strategy:?}/n={n}: output not semisorted"
        );
        let baseline = baselines::seq_hash_semisort(&records);
        assert!(
            is_permutation_of(&out, &baseline),
            "{dist}/{strategy:?}/n={n}: output multiset differs from seq_hash"
        );
        assert_eq!(
            group_sizes(&out),
            group_sizes(&baseline),
            "{dist}/{strategy:?}/n={n}: group structure differs from seq_hash"
        );
    }
}

#[test]
fn uniform_random_cas() {
    check_strategy("uniform", ScatterStrategy::RandomCas);
}

#[test]
fn uniform_blocked() {
    check_strategy("uniform", ScatterStrategy::Blocked);
}

#[test]
fn power_law_random_cas() {
    check_strategy("power-law", ScatterStrategy::RandomCas);
}

#[test]
fn power_law_blocked() {
    check_strategy("power-law", ScatterStrategy::Blocked);
}

#[test]
fn all_equal_random_cas() {
    check_strategy("all-equal", ScatterStrategy::RandomCas);
}

#[test]
fn all_equal_blocked() {
    check_strategy("all-equal", ScatterStrategy::Blocked);
}

#[test]
fn all_distinct_random_cas() {
    check_strategy("all-distinct", ScatterStrategy::RandomCas);
}

#[test]
fn all_distinct_blocked() {
    check_strategy("all-distinct", ScatterStrategy::Blocked);
}

#[test]
fn strategies_agree_with_each_other() {
    // Beyond both matching the baseline: the two strategies' outputs are
    // permutations of each other with identical group structure, at every
    // size and shape, under a non-default seed.
    for dist in ["uniform", "power-law", "all-equal", "all-distinct"] {
        for n in [1_000usize, 100_000] {
            let records = workload(dist, n);
            let cas = semisort_pairs(&records, &SemisortConfig::default().with_seed(0xd1ff));
            let blocked = semisort_pairs(
                &records,
                &SemisortConfig {
                    scatter_strategy: ScatterStrategy::Blocked,
                    ..SemisortConfig::default().with_seed(0xd1ff)
                },
            );
            assert!(is_permutation_of(&cas, &blocked), "{dist}/n={n}");
            assert_eq!(group_sizes(&cas), group_sizes(&blocked), "{dist}/n={n}");
        }
    }
}
