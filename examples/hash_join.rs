//! Relational hash join built on semisort.
//!
//! "In the relational join operation common in database processing, equal
//! values of a field of a relation have to be put together with equal
//! values of a field of another. Indeed … the most recent work on analyzing
//! the performance of in-memory database joins has focused on hash and
//! sorting based methods for semisorting." (§1.)
//!
//! This example joins an `orders` table with a `customers` table on
//! customer id: both relations are semisorted by the join key, then the
//! grouped runs are zipped — the classic sort-merge-join plan with
//! semisort replacing the full sort.
//!
//! ```sh
//! cargo run --release --example hash_join
//! ```

use semisort::{try_group_by, SemisortConfig};

#[derive(Clone, Debug)]
struct Customer {
    id: u32,
    name: String,
}

#[derive(Clone, Copy, Debug)]
struct Order {
    customer_id: u32,
    amount_cents: u64,
}

fn main() {
    // Build relations: 10k customers, 200k orders with a skewed customer mix.
    let customers: Vec<Customer> = (0..10_000u32)
        .map(|id| Customer {
            id,
            name: format!("customer-{id:05}"),
        })
        .collect();
    let orders: Vec<Order> = (0..200_000u64)
        .map(|i| {
            // Skewed mix: sqrt of a uniform draw concentrates orders on
            // high customer ids (a few customers order far more often).
            let r = parlay::hash64(i);
            let id = ((r % 100_000_000) as f64).sqrt() as u32; // 0..10_000, skewed high
            Order {
                customer_id: id.min(9_999),
                amount_cents: 100 + (r % 90_000),
            }
        })
        .collect();
    println!(
        "join: {} orders ⋈ {} customers on customer_id",
        orders.len(),
        customers.len()
    );

    let cfg = SemisortConfig::default();
    let t = std::time::Instant::now();

    // Semisort both sides by the join key.
    let order_groups = try_group_by(&orders, |o| o.customer_id, &cfg).unwrap();
    let customer_groups = try_group_by(&customers, |c| c.id, &cfg).unwrap();

    // Index the (unique-key) build side: customer id → group index.
    let build: std::collections::HashMap<u32, usize> = (0..customer_groups.len())
        .map(|g| (customer_groups.group(g)[0].id, g))
        .collect();

    // Probe: for each order group, emit (customer name, total, count).
    let mut joined: Vec<(String, u64, usize)> = (0..order_groups.len())
        .map(|g| {
            let run = order_groups.group(g);
            let id = run[0].customer_id;
            let total: u64 = run.iter().map(|o| o.amount_cents).sum();
            let name = build
                .get(&id)
                .map(|&cg| customer_groups.group(cg)[0].name.clone())
                .unwrap_or_else(|| format!("unknown-{id}"));
            (name, total, run.len())
        })
        .collect();
    let elapsed = t.elapsed();

    joined.sort_unstable_by_key(|j| std::cmp::Reverse(j.1));
    println!(
        "joined {} customer groups in {:.0} ms",
        joined.len(),
        elapsed.as_secs_f64() * 1000.0
    );
    println!("\ntop 5 customers by spend:");
    for (name, cents, orders) in joined.iter().take(5) {
        println!(
            "  {name}  ${:.2} over {orders} orders",
            *cents as f64 / 100.0
        );
    }

    // Verify: totals must match a brute-force aggregation.
    let mut reference: std::collections::HashMap<u32, (u64, usize)> = Default::default();
    for o in &orders {
        let e = reference.entry(o.customer_id).or_default();
        e.0 += o.amount_cents;
        e.1 += 1;
    }
    assert_eq!(joined.len(), reference.len());
    let total_joined: u64 = joined.iter().map(|j| j.1).sum();
    let total_ref: u64 = reference.values().map(|v| v.0).sum();
    assert_eq!(total_joined, total_ref);
    println!("\nverified against brute-force aggregation ✓");
}
