//! Building an inverted index — the canonical MapReduce application.
//!
//! Map emits `(term, document)` postings; the shuffle groups postings by
//! term; the reduce sorts each posting list. The shuffle is the semisort.
//! This is the textbook workload the paper's MapReduce motivation (§1)
//! refers to.
//!
//! ```sh
//! cargo run --release --example inverted_index
//! ```

use rayon::prelude::*;
use semisort::{try_group_by, SemisortConfig};

/// Synthetic document collection: each document is a set of term ids with a
/// skewed global term frequency (few common terms, long tail).
fn synthesize_docs(num_docs: usize, terms_per_doc: usize) -> Vec<Vec<u32>> {
    (0..num_docs)
        .map(|d| {
            (0..terms_per_doc)
                .map(|t| {
                    let r = parlay::hash64((d * terms_per_doc + t) as u64);
                    // sqrt-skew over a 30k-term vocabulary.
                    ((r % 900_000_000) as f64).sqrt() as u32
                })
                .collect()
        })
        .collect()
}

fn main() {
    let docs = synthesize_docs(20_000, 40);
    println!("collection: {} documents × {} terms", docs.len(), 40);

    // Map: postings.
    let postings: Vec<(u32, u32)> = docs
        .par_iter()
        .enumerate()
        .flat_map_iter(|(d, terms)| terms.iter().map(move |&t| (t, d as u32)))
        .collect();
    println!("map: {} postings", postings.len());

    // Shuffle: group postings by term.
    let cfg = SemisortConfig::default();
    let t0 = std::time::Instant::now();
    let groups = try_group_by(&postings, |p| p.0, &cfg).unwrap();
    // Reduce: sorted, deduplicated posting list per term, in parallel.
    let index: Vec<(u32, Vec<u32>)> = groups.par_map(|g| {
        let term = g[0].0;
        let mut list: Vec<u32> = g.iter().map(|p| p.1).collect();
        list.sort_unstable();
        list.dedup();
        (term, list)
    });
    println!(
        "shuffle+reduce: inverted index over {} terms in {:.0} ms",
        index.len(),
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // Query: conjunctive AND of the three most common terms.
    let mut by_df: Vec<&(u32, Vec<u32>)> = index.iter().collect();
    by_df.sort_unstable_by_key(|e| std::cmp::Reverse(e.1.len()));
    let top: Vec<&(u32, Vec<u32>)> = by_df.iter().take(3).copied().collect();
    println!("\ntop terms by document frequency:");
    for (term, list) in &top {
        println!("  term {term}: {} documents", list.len());
    }
    let hits = intersect_sorted(&top[0].1, &intersect_sorted(&top[1].1, &top[2].1));
    println!(
        "AND({}, {}, {}) → {} documents",
        top[0].0,
        top[1].0,
        top[2].0,
        hits.len()
    );

    // Verify the index against a brute-force construction.
    let mut reference: std::collections::HashMap<u32, std::collections::BTreeSet<u32>> =
        Default::default();
    for (d, terms) in docs.iter().enumerate() {
        for &t in terms {
            reference.entry(t).or_default().insert(d as u32);
        }
    }
    assert_eq!(index.len(), reference.len());
    for (term, list) in &index {
        let want: Vec<u32> = reference[term].iter().copied().collect();
        assert_eq!(list, &want, "posting list mismatch for term {term}");
    }
    println!("\nverified against brute-force index ✓");
}

/// Intersection of two sorted, deduplicated lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}
