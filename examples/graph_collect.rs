//! Building a graph adjacency structure with semisort.
//!
//! Semisorting is used "to collect values associated with vertices in a
//! graph" (§1, citing the SPAA 2014 parallel graph-coloring work): given an
//! unordered edge list, grouping edges by source vertex *is* the
//! adjacency-list construction — CSR without sorting the neighbor lists.
//!
//! This example builds a CSR structure for a scale-free random graph via
//! `group_by`, then runs one step of label propagation over it to show the
//! structure is usable, and validates degrees against a reference count.
//!
//! ```sh
//! cargo run --release --example graph_collect
//! ```

use semisort::{try_group_by, SemisortConfig};

fn main() {
    // A skewed multigraph: 500k directed edges over 50k vertices; sqrt of
    // a uniform draw concentrates sources on high vertex ids, so
    // out-degrees vary widely.
    let num_vertices = 50_000u32;
    let edges: Vec<(u32, u32)> = (0..500_000u64)
        .map(|i| {
            let r1 = parlay::hash64(i);
            let r2 = parlay::hash64(i ^ 0xabcdef);
            let src = ((r1 % (num_vertices as u64 * num_vertices as u64)) as f64).sqrt() as u32;
            let dst = (r2 % num_vertices as u64) as u32;
            (src.min(num_vertices - 1), dst)
        })
        .collect();
    println!(
        "graph: {} vertices, {} directed edges (skewed out-degrees)",
        num_vertices,
        edges.len()
    );

    // Collect edges by source: the semisort does the heavy lifting.
    let cfg = SemisortConfig::default();
    let t = std::time::Instant::now();
    let groups = try_group_by(&edges, |e| e.0, &cfg).unwrap();
    println!(
        "collected {} non-empty adjacency lists in {:.0} ms",
        groups.len(),
        t.elapsed().as_secs_f64() * 1000.0
    );

    // Degree distribution sanity: compare against a counting pass.
    let mut ref_degree = vec![0usize; num_vertices as usize];
    for &(s, _) in &edges {
        ref_degree[s as usize] += 1;
    }
    let mut max_deg = 0;
    let mut max_v = 0;
    for g in 0..groups.len() {
        let run = groups.group(g);
        let v = run[0].0;
        assert!(run.iter().all(|e| e.0 == v), "mixed adjacency list");
        assert_eq!(run.len(), ref_degree[v as usize], "degree mismatch at {v}");
        if run.len() > max_deg {
            max_deg = run.len();
            max_v = v;
        }
    }
    println!("degrees verified ✓ (max out-degree {max_deg} at vertex {max_v})");

    // One label-propagation step: every vertex takes the min label among
    // its out-neighbors (labels start as vertex ids).
    let t = std::time::Instant::now();
    let mut labels: Vec<u32> = (0..num_vertices).collect();
    for g in 0..groups.len() {
        let run = groups.group(g);
        let v = run[0].0 as usize;
        let best = run.iter().map(|e| labels[e.1 as usize]).min().unwrap();
        labels[v] = labels[v].min(best);
    }
    let changed = labels
        .iter()
        .enumerate()
        .filter(|(i, &l)| l != *i as u32)
        .count();
    println!(
        "label propagation step: {changed} labels lowered in {:.0} ms",
        t.elapsed().as_secs_f64() * 1000.0
    );
}
