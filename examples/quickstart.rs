//! Quickstart: semisort a small dataset and inspect the groups.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use semisort::{try_group_by, try_semisort_by_key, SemisortConfig};

fn main() {
    // A stream of (city, temperature) readings, cities interleaved.
    let readings: Vec<(&str, i32)> = vec![
        ("tokyo", 21),
        ("oslo", 4),
        ("tokyo", 23),
        ("cairo", 35),
        ("oslo", 2),
        ("tokyo", 22),
        ("cairo", 33),
        ("oslo", 5),
    ];

    let cfg = SemisortConfig::default();

    // Semisort: equal cities become contiguous (cities in no fixed order).
    let grouped = try_semisort_by_key(&readings, |r| r.0, &cfg).unwrap();
    println!("semisorted: {grouped:?}");
    assert!(semisort::verify::is_semisorted_by(&grouped, |r| r.0));

    // group_by adds the group boundaries.
    let groups = try_group_by(&readings, |r| r.0, &cfg).unwrap();
    println!("\n{} groups:", groups.len());
    for g in groups.iter() {
        let city = g[0].0;
        let avg: f64 = g.iter().map(|r| r.1 as f64).sum::<f64>() / g.len() as f64;
        println!("  {city:>6}: {} readings, avg {avg:.1}°C", g.len());
    }

    // The same machinery at scale: a million records, ~1000 distinct keys.
    let big: Vec<(u64, u64)> = (0..1_000_000u64)
        .map(|i| (parlay::hash64(i % 1000), i))
        .collect();
    let t = std::time::Instant::now();
    let out = semisort::try_semisort_pairs(&big, &cfg).unwrap();
    println!(
        "\nsemisorted 1M records ({} distinct keys) in {:.0} ms",
        1000,
        t.elapsed().as_secs_f64() * 1000.0
    );
    assert!(semisort::verify::is_semisorted_by(&out, |r| r.0));
    println!("verified: equal keys are contiguous");
}
