//! MapReduce word count, with semisort as the shuffle.
//!
//! "In the popular MapReduce paradigm … the most expensive step is
//! typically the so-called shuffle step, which collects the tuples with
//! equal keys returned from the map stage together so the reducer can be
//! applied to each group." (§1.) This example runs the classic word-count
//! job: map emits (word, 1), the semisort-backed shuffle groups by word,
//! and the reduce sums each group — then cross-checks against a HashMap.
//!
//! ```sh
//! cargo run --release --example wordcount_shuffle
//! ```

use std::collections::HashMap;

use rayon::prelude::*;
use semisort::{try_reduce_by_key, SemisortConfig};

/// A tiny deterministic "corpus": sentences assembled from a vocabulary
/// with a skewed (rank-weighted) word frequency, like real text.
fn synthesize_corpus(sentences: usize) -> Vec<String> {
    const VOCAB: [&str; 24] = [
        "the", "of", "and", "to", "in", "a", "is", "that", "for", "it", "was", "on", "are", "with",
        "as", "his", "they", "be", "at", "one", "semisort", "parallel", "bucket", "scatter",
    ];
    (0..sentences)
        .map(|s| {
            let words: Vec<&str> = (0..12)
                .map(|w| {
                    // Rank-skewed pick: sqrt of a uniform draw puts more
                    // mass at high indices, so later vocabulary words repeat.
                    let r = parlay::hash64((s * 12 + w) as u64);
                    let idx = ((r % 576) as f64).sqrt() as usize; // 0..24, skewed high
                    VOCAB[idx.min(VOCAB.len() - 1)]
                })
                .collect();
            words.join(" ")
        })
        .collect()
}

fn main() {
    let corpus = synthesize_corpus(50_000);
    println!("corpus: {} sentences", corpus.len());

    // Map: emit (word, 1) pairs, in parallel.
    let pairs: Vec<(String, u64)> = corpus
        .par_iter()
        .flat_map_iter(|line| line.split_whitespace().map(|w| (w.to_string(), 1u64)))
        .collect();
    println!("map: {} (word, 1) tuples", pairs.len());

    // Shuffle + reduce: group by word with the semisort, sum each group.
    let cfg = SemisortConfig::default();
    let t = std::time::Instant::now();
    let mut counts =
        try_reduce_by_key(&pairs, |p| p.0.clone(), 0u64, |a, p| a + p.1, &cfg).unwrap();
    let elapsed = t.elapsed();
    counts.sort_unstable_by_key(|c| std::cmp::Reverse(c.1));
    println!(
        "shuffle+reduce: {} distinct words in {:.0} ms",
        counts.len(),
        elapsed.as_secs_f64() * 1000.0
    );

    println!("\ntop 10 words:");
    for (word, count) in counts.iter().take(10) {
        println!("  {word:>10}  {count}");
    }

    // Cross-check against a sequential HashMap reduce.
    let mut reference: HashMap<&str, u64> = HashMap::new();
    for (w, c) in &pairs {
        *reference.entry(w.as_str()).or_default() += c;
    }
    assert_eq!(counts.len(), reference.len());
    for (word, count) in &counts {
        assert_eq!(reference[word.as_str()], *count, "mismatch for {word}");
    }
    println!("\nverified against sequential HashMap reduce ✓");
}
