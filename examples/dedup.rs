//! Duplicate analysis with semisort — "collecting equal values".
//!
//! Valiant's original use of semisorting was collecting "memory operations
//! to the same location … so they can be combined" (§1). The everyday
//! version of that task: given a stream with duplicates, produce the
//! distinct elements, their multiplicities, and a deduplicated stream that
//! keeps first occurrences — all from one `group_by`.
//!
//! ```sh
//! cargo run --release --example dedup
//! ```

use semisort::{try_group_by, try_semisort_stable_by_key, SemisortConfig};

fn main() {
    // A synthetic event stream: 400k events over ~20k distinct session ids,
    // arrival order scrambled, frequencies Zipf-flavored.
    let events: Vec<(u64, u32)> = (0..400_000u64)
        .map(|i| {
            let r = parlay::hash64(i);
            let session = ((r % 400_000_000) as f64).sqrt() as u64; // skewed
            (session, (r % 1000) as u32)
        })
        .collect();
    println!("stream: {} events", events.len());

    let cfg = SemisortConfig::default();
    let t = std::time::Instant::now();
    let groups = try_group_by(&events, |e| e.0, &cfg).unwrap();
    println!(
        "grouped into {} distinct sessions in {:.0} ms",
        groups.len(),
        t.elapsed().as_secs_f64() * 1000.0
    );

    // Multiplicity histogram: how many sessions have k events?
    let sizes = groups.sizes();
    let max_mult = sizes.iter().copied().max().unwrap_or(0);
    let mult_hist = parlay::histogram::histogram(&sizes, max_mult + 1);
    println!("\nmultiplicity histogram (first 10 rows):");
    for (k, &count) in mult_hist.iter().enumerate().skip(1).take(10) {
        if count > 0 {
            println!("  {count:>6} sessions appear {k} time(s)");
        }
    }
    println!("  largest session: {max_mult} events");

    // Deduplicated stream keeping *first* occurrences in arrival order:
    // stable-semisort (session, arrival#) and take each group's head.
    let tagged: Vec<(u64, usize)> = events.iter().enumerate().map(|(i, e)| (e.0, i)).collect();
    let stable = try_semisort_stable_by_key(&tagged, |t| t.0, &cfg).unwrap();
    let mut firsts: Vec<(u64, usize)> = Vec::with_capacity(groups.len());
    for (j, &rec) in stable.iter().enumerate() {
        if j == 0 || stable[j - 1].0 != rec.0 {
            firsts.push(rec);
        }
    }
    println!("\ndeduplicated: {} first-occurrence events", firsts.len());

    // Verify against a sequential HashSet dedup.
    let mut seen = std::collections::HashSet::new();
    let reference: Vec<(u64, usize)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| seen.insert(e.0))
        .map(|(i, e)| (e.0, i))
        .collect();
    assert_eq!(firsts.len(), reference.len());
    let mut f = firsts.clone();
    let mut r = reference.clone();
    f.sort_unstable();
    r.sort_unstable();
    assert_eq!(f, r, "first-occurrence sets must agree");
    println!("verified against sequential HashSet dedup ✓");
}
